"""T1-C-GRAPH — Table 1, Group C: graph-algorithm rows.

Group C's CGM algorithms run ``lambda = O(log p)`` rounds, so the generated
EM algorithms cost ``O~(G log(p) n/(pBD))`` I/O — versus the PRAM-simulation
approach (Chiang et al.), which pays a *full external sort per PRAM step*
(``Theta(sort(n) log n)`` for pointer jumping).  The benchmark measures
list ranking both ways on the same substrate, plus the Euler-tour and
connectivity rows through the simulation.
"""

import pytest

from repro import workloads
from repro.algorithms.graphs import (
    CGMConnectedComponents,
    CGMEulerTourSuccessor,
    CGMListRanking,
    CGMSpanningForest,
)
from repro.baselines import PRAMListRanking
from repro.core.simulator import simulate
from repro.params import MachineParams

from .common import emit

V, D, B = 8, 4, 32


def machine_for(alg, p=1):
    return MachineParams(
        p=p, M=max(2 * alg.context_size(), D * B), D=D, B=B, b=B
    )


def run_list_ranking(n, seed=0):
    succ = workloads.random_linked_list(n, seed=seed)
    alg = CGMListRanking(succ, V)
    out, report = simulate(CGMListRanking(succ, V), machine_for(alg), v=V, seed=seed)
    return report


def test_table1_list_ranking_vs_pram(benchmark):
    rows = []
    for n in (512, 4096):
        succ = workloads.random_linked_list(n, seed=n)

        alg = CGMListRanking(succ, V)
        machine = machine_for(alg)
        out, report = simulate(CGMListRanking(succ, V), machine, v=V, seed=n)
        cgm_io = report.io_ops

        pram_machine = MachineParams(p=1, M=machine.M, D=D, B=B, b=B)
        ranks, pram_stats = PRAMListRanking(pram_machine).rank(succ)
        # Cross-validate the two implementations against each other.
        got = {}
        for part in out:
            got.update(dict(part))
        assert [got[i] for i in range(n)] == ranks

        rows.append(
            (
                n,
                report.num_supersteps,
                cgm_io,
                pram_stats.steps,
                pram_stats.io_ops,
                f"{pram_stats.io_ops / cgm_io:.1f}x",
            )
        )
    emit(
        "T1-C-LISTRANK",
        f"list ranking, D={D}, B={B}, v={V}: generated EM-CGM vs PRAM simulation",
        ["n", "CGM supersteps", "CGM-sim io", "PRAM steps", "PRAM-sim io",
         "PRAM/CGM"],
        rows,
    )
    # Shape: the PRAM route pays a sort per step and Theta(log n) steps,
    # while the CGM route pays Theta(log v) supersteps; the gap widens
    # with n and the generated algorithm wins clearly at the larger size.
    assert rows[-1][4] > 1.5 * rows[-1][2]
    gap_small = rows[0][4] / rows[0][2]
    gap_large = rows[-1][4] / rows[-1][2]
    assert gap_large > gap_small
    benchmark(run_list_ranking, 256)


def test_table1_euler_tour(benchmark):
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    rows = []
    for n in (128, 512):
        edges = workloads.random_tree_edges(n, seed=n)
        alg = CGMEulerTourSuccessor(edges, 0, V)
        _, report = simulate(
            CGMEulerTourSuccessor(edges, 0, V), machine_for(alg), v=V, seed=n
        )
        scans = report.io_ops / (2 * n / (D * B))
        rows.append((n, report.num_supersteps, report.io_ops, f"{scans:.1f}"))
    emit(
        "T1-C-EULER",
        "Euler tour construction (lambda = O(1))",
        ["n", "supersteps", "io_ops", "scans of 2n arcs"],
        rows,
    )
    assert all(r[1] == CGMEulerTourSuccessor.LAMBDA for r in rows)
    assert float(rows[-1][3]) <= float(rows[0][3]) * 1.5 + 2


def test_table1_connected_components(benchmark):
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    rows = []
    for nverts, nedges in ((128, 256), (512, 1024)):
        edges = workloads.random_graph_edges(nverts, nedges, seed=nverts)
        alg = CGMConnectedComponents(nverts, edges, V)
        _, report = simulate(
            CGMConnectedComponents(nverts, edges, V),
            machine_for(alg),
            v=V,
            seed=nverts,
        )
        rows.append(
            (f"V={nverts},E={nedges}", report.num_supersteps, report.io_ops)
        )
    emit(
        "T1-C-CC",
        f"connected components (lambda = O(log v), v={V})",
        ["graph", "supersteps", "io_ops"],
        rows,
    )
    # lambda = ceil(log2 v) + 2, independent of the graph size.
    lam = [r[1] for r in rows]
    assert lam[0] == lam[1] <= V.bit_length() + 3


def test_table1_spanning_forest(benchmark):
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    nverts, nedges = 256, 768
    edges = workloads.random_graph_edges(nverts, nedges, seed=7, connected=True)
    alg = CGMSpanningForest(nverts, edges, V)
    out, report = simulate(
        CGMSpanningForest(nverts, edges, V), machine_for(alg), v=V, seed=7
    )
    assert len(out[0]) == nverts - 1
    emit(
        "T1-C-SF",
        "spanning forest",
        ["V", "E", "supersteps", "io_ops"],
        [(nverts, nedges, report.num_supersteps, report.io_ops)],
    )


def test_table1_lca(benchmark):
    """Row "Lowest common ancestor": tour + ranking + RMQ composition."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    import random

    from repro.algorithms.graphs import batched_lca

    n, nq = 256, 128
    edges = workloads.random_tree_edges(n, seed=13)
    rng = random.Random(13)
    queries = [(rng.randrange(n), rng.randrange(n)) for _ in range(nq)]

    from repro.pipeline import Pipeline

    pipe = Pipeline(MachineParams(p=1, M=1 << 12, D=D, B=B, b=B), seed=3)
    answers = batched_lca(edges, 0, queries, V, run=pipe.run)
    assert len(answers) == nq
    emit(
        "T1-C-LCA",
        f"batched LCA, n={n}, {nq} queries (tour + ranking x2 + RMQ)",
        ["stages", "component supersteps (total)", "io_ops (total)"],
        [(pipe.stages, pipe.supersteps, pipe.io_ops)],
    )
    # Total supersteps bounded by O(log v) + constants, not by n.
    assert pipe.supersteps <= 80


def test_table1_expression_eval(benchmark):
    """Rows "Tree contraction, Expression tree evaluation"."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    from repro.algorithms.graphs import CGMExpressionEval

    rows = []
    for nleaves in (64, 256):
        edges, ops, leaves = workloads.random_expression_tree(nleaves, seed=nleaves)
        alg = CGMExpressionEval(edges, ops, leaves, V)
        _, report = simulate(
            CGMExpressionEval(edges, ops, leaves, V),
            machine_for(alg),
            v=V,
            seed=nleaves,
        )
        rows.append((nleaves, report.num_supersteps, report.io_ops))
    emit(
        "T1-C-EXPR",
        f"expression tree evaluation (rake + compress + gather, v={V})",
        ["leaves", "supersteps", "io_ops"],
        rows,
    )
    # lambda = O(log v): superstep counts stay flat as the tree quadruples.
    assert rows[1][1] <= rows[0][1] + 6


def test_table1_biconnected_components(benchmark):
    """Row "Biconnected components": the Tarjan-Vishkin composition."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    from repro.algorithms.graphs import biconnected_components

    nverts, nedges = 96, 160
    edges = workloads.random_graph_edges(nverts, nedges, seed=17, connected=True)

    from repro.pipeline import Pipeline

    pipe = Pipeline(MachineParams(p=1, M=1 << 12, D=D, B=B, b=B), seed=5)
    comps = biconnected_components(nverts, edges, V, run=pipe.run)
    covered = {e for c in comps for e in c}
    assert covered == {(min(a, b), max(a, b)) for a, b in edges}
    emit(
        "T1-C-BICONN",
        f"biconnected components, V={nverts}, E={nedges}",
        ["components", "CGM stages", "io_ops (total)"],
        [(len(comps), pipe.stages, pipe.io_ops)],
    )


def test_table1_ear_decomposition(benchmark):
    """Row "Ear and open ear decomposition"."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    from repro.algorithms.graphs import ear_decomposition
    import random

    n = 64
    rng = random.Random(19)
    order = list(range(n))
    rng.shuffle(order)
    edges = {(min(a, b), max(a, b)) for a, b in zip(order, order[1:] + order[:1])}
    while len(edges) < 2 * n:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((min(a, b), max(a, b)))
    edges = sorted(edges)

    from repro.pipeline import Pipeline

    pipe = Pipeline(MachineParams(p=1, M=1 << 12, D=D, B=B, b=B), seed=7)
    ears = ear_decomposition(n, edges, V, run=pipe.run)
    assert len(ears) == len(edges) - n + 1
    emit(
        "T1-C-EARS",
        f"ear decomposition, V={n}, E={len(edges)}",
        ["ears", "CGM stages", "io_ops (total)"],
        [(len(ears), pipe.stages, pipe.io_ops)],
    )
