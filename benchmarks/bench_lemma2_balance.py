"""LEM2 — the bucket-balance tail bound (Lemmas 2 and 3).

Lemma 2: writing blocks to uniformly random disks leaves every bucket's
per-disk load within ``l * R/D`` except with probability
``exp(-Omega(l log l R/D))``.  The benchmark measures the empirical maximum
load ratio across many seeds — with *randomly ordered* destinations, so the
balance really is the randomization's doing — and checks the tail tightens
as ``R`` grows, exactly as the bound predicts.

A companion test shows what the randomization buys: on adversarially
ordered traffic, a non-random (static) disk assignment piles whole buckets
onto single disks (load ratio ``~D``), which would serialize the fetching
phase; the random permutation is oblivious to the traffic pattern.
"""

import random

from repro.emio.disk import Block
from repro.emio.diskarray import DiskArray
from repro.emio.layout import RegionAllocator
from repro.emio.linked import LinkedBuckets

from .common import emit


def max_load_ratio(R: int, D: int, v: int, seed: int, schedule="random") -> float:
    array = DiskArray(D, 8)
    store = LinkedBuckets(
        array,
        RegionAllocator(array),
        D,
        lambda d: d * D // v,
        random.Random(seed),
        schedule=schedule,
    )
    # Balanced destinations (exactly R blocks per bucket, as the lemma
    # assumes) in a random arrival order, so only the disk assignment's
    # randomness is under test.
    rng = random.Random(seed + 999)
    dests = [i % v for i in range(R * D)]
    rng.shuffle(dests)
    store.append_blocks(
        [Block(records=[], dest=d, src=0, msg=i) for i, d in enumerate(dests)]
    )
    return store.max_load_ratio()


def adversarial_ratio(R: int, D: int, schedule: str) -> float:
    """Traffic whose in-cycle position equals the bucket id — the pattern
    that defeats deterministic disk assignment."""
    v = D  # one destination per bucket
    array = DiskArray(D, 8)
    store = LinkedBuckets(
        array,
        RegionAllocator(array),
        D,
        lambda d: d,
        random.Random(0),
        schedule=schedule,
    )
    blocks = []
    for _cycle in range(R):
        blocks.extend(
            Block(records=[], dest=i, src=0, msg=i) for i in range(D)
        )
    store.append_blocks(blocks)
    return store.max_load_ratio()


def test_lemma2_balance_tail(benchmark):
    D, v = 8, 64
    nseeds = 60
    rows = []
    for R in (16, 64, 256):
        ratios = sorted(max_load_ratio(R, D, v, s) for s in range(nseeds))
        med = ratios[nseeds // 2]
        p95 = ratios[int(nseeds * 0.95)]
        worst = ratios[-1]
        rows.append((R, f"{med:.2f}", f"{p95:.2f}", f"{worst:.2f}"))
        # Lemma 2: the deviation l shrinks as R/D grows — the tail is
        # exp(-Omega(l log l * R/D)).
        if R >= 64:
            assert worst <= 2.5
        if R >= 256:
            assert worst <= 1.8
    emit(
        "LEM2",
        f"max per-disk bucket load / (R/D), D={D}, random dests, {nseeds} seeds",
        ["R (blocks/bucket)", "median", "p95", "max"],
        rows,
    )
    # Concentration improves with R: the tail shrinks.
    maxima = [float(r[3]) for r in rows]
    assert maxima[-1] <= maxima[0]
    benchmark(max_load_ratio, 64, D, v, 0)


def test_lemma2_randomization_is_input_oblivious(benchmark):
    """Static assignment collapses on bucket-correlated traffic; the
    paper's random permutation does not care."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    D, R = 8, 64
    static = adversarial_ratio(R, D, "static")
    rotate = adversarial_ratio(R, D, "rotate")
    rnd = adversarial_ratio(R, D, "random")
    emit(
        "LEM2-ADV",
        f"adversarial bucket-correlated traffic, D={D}, {R} cycles",
        ["schedule", "max load ratio", "consequence"],
        [
            ("static", f"{static:.2f}", "whole bucket on one disk"),
            ("rotate", f"{rotate:.2f}", "saved by per-cycle rotation"),
            ("random (paper)", f"{rnd:.2f}", "oblivious guarantee"),
        ],
    )
    assert static == D  # total collapse
    assert rnd <= 2.0


def test_lemma2_larger_D_needs_larger_R(benchmark):
    """For fixed R, more disks mean relatively worse balance — the paper's
    slackness condition v >= k*D*log(M/B) exists precisely for this."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    v = 256
    small_D = sum(max_load_ratio(64, 2, v, s) for s in range(20)) / 20
    large_D = sum(max_load_ratio(64, 16, v, s) for s in range(20)) / 20
    assert large_D >= small_D
