"""OBS2 — c-optimality preservation (Observation 2, Section 5.4).

An EM-BSP* algorithm is *c-optimal* when (a) its computation time is within
``c + o(1)`` of ``T(A)/p`` (best sequential time over processors), (b) its
communication time is ``o(T(A)/p)``, and (c) its I/O time is ``o(T(A)/p)``.
Observation 2: the simulation preserves c-optimality when
``G = BD * o(beta / (mu * lambda))`` — i.e. for realistic ``G`` the I/O term
is dominated by computation as ``n`` grows.

The benchmark runs the generated EM sort across ``n`` and reports the
ratios ``comm_time / comp`` and ``io_time / comp``; both must *decrease*
with ``n`` (the ``o(1)`` direction), while ``comp`` stays within a constant
of the sequential sort's ``n log n``.
"""

import math

import pytest

from repro import workloads
from repro.algorithms import CGMSampleSort
from repro.core.simulator import simulate
from repro.params import MachineParams

from .common import emit

V, D, B = 8, 4, 32


def run(n, G=1.0, g=1.0, L=1.0, seed=0):
    data = workloads.uniform_keys(n, seed=seed)
    alg = CGMSampleSort(data, V)
    machine = MachineParams(
        p=1, M=max(2 * alg.context_size(), D * B), D=D, B=B, b=B, G=G, g=g, L=L
    )
    _, report = simulate(CGMSampleSort(data, V), machine, v=V, seed=seed)
    return report


def test_obs2_cost_ratios_shrink(benchmark):
    rows = []
    for n in (512, 2048, 8192):
        report = run(n, seed=n)
        led = report.ledger
        comp = led.total_comp
        comm_t = led.total_comm_time()
        io_t = led.total_io_time()
        seq = n * math.log2(n)
        rows.append(
            (
                n,
                f"{comp:.0f}",
                f"{comp / seq:.2f}",
                f"{comm_t / comp:.3f}",
                f"{io_t / comp:.3f}",
            )
        )
    emit(
        "OBS2",
        "c-optimality: cost ratios of the generated EM sort (G=g=L=1)",
        ["n", "comp ops", "comp/(n log n)", "comm/comp", "io/comp"],
        rows,
    )
    # (a): computation within a constant of sequential n log n.
    consts = [float(r[2]) for r in rows]
    assert max(consts) <= 8
    # (b), (c): communication and I/O ratios shrink with n (the o(1) terms).
    io_ratios = [float(r[4]) for r in rows]
    assert io_ratios[-1] < io_ratios[0]
    benchmark(run, 512)


def test_obs2_G_condition(benchmark):
    """The I/O term scales linearly with G: c-optimality survives exactly
    while G stays within the Observation 2 budget."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    n = 2048
    r1 = run(n, G=1.0, seed=1)
    r10 = run(n, G=10.0, seed=1)
    assert r10.ledger.total_io_time() == pytest.approx(
        10 * r1.ledger.total_io_time()
    )
    assert r10.ledger.total_comp == r1.ledger.total_comp
