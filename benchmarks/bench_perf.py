"""Wall-clock benchmark trajectory for the simulation engines.

Unlike the Table/Figure benchmarks (which measure *counted* model costs),
this harness times the host-side wall clock of the engines across the
performance knobs introduced by the fast path work:

* ``seq_reference``   — sequential engine, reference data plane (the seed path)
* ``seq_fast``        — sequential engine, ``fast_io=True, context_cache=True``
* ``par_inline``      — parallel engine (p=4), inline backend, reference plane
* ``par_fast_inline`` — parallel engine, inline backend, fast path
* ``par_fast_process``— parallel engine, process backend, fast path
* ``seq_fast_vector``/``par_fast_process_vector`` — the fast configs on the
  vectorized record plane (``records="vector"``, DESIGN §10): numpy blocks
  and argsort/searchsorted kernels instead of boxed records
* ``seq_fast_observed``/``par_fast_observed`` — the fast configs with a
  telemetry :class:`repro.obs.Collector` attached (span/metric overhead)
* ``seq_file_storage``  — sequential engine on the out-of-core file plane
  (track files in a private tempdir); measures the pread/pwrite + pickle
  cost of true external storage against the in-heap reference
* ``seq_file_overlap``  — the file plane with ``io_overlap=True`` (DESIGN
  §12): write-behind flusher + readahead hide platter time behind
  computation; same counted costs, reported next to the synchronous file
  plane's wall clock as ``ratio_file_overlap`` / ``ratio_file_sync``
  (x the in-heap reference)
* ``seq_file_fast_overlap`` — the overlapped file plane with the fast
  knobs on; ``ratio_file_overlap_fast`` (x ``seq_fast``) is the
  acceptance ratio for the storage-plane gap

For every workload the harness *asserts* that each engine's fast and
observed configurations report exactly the same parallel I/O operation
count, packet count, and computation cost as that engine's reference
configuration — the dual-accounting invariant (counted model costs are
untouchable; only host time may change).  Observer overhead above 5% prints
a soft warning.  Results land in ``BENCH_PERF.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py [--quick] [--out PATH]
        [--check-regression BASELINE] [--history PATH | --no-history]

``--check-regression`` compares wall times against a committed baseline JSON
and prints warnings for >2x slowdowns; it exits 0 regardless (CI treats the
job as a soft signal; counted-cost mismatches still exit 1).

Every run also appends one schema-versioned, host-fingerprinted entry to
``BENCH_HISTORY.jsonl`` and compares it against its same-host trajectory
(:mod:`repro.obs.trend`): a slow run prints a soft ``::warning::``, while
counted ``io_ops`` drifting from history is a hard violation (exit 1) — the
model charges the same I/O on every host.  Quick and full modes are tracked
as separate config keys so their differing problem sizes never cross-trip
the drift check.  ``repro perf trend`` reads the same file.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Any

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.algorithms.graphs.listranking import CGMListRanking  # noqa: E402
from repro.algorithms.permutation import CGMPermutation  # noqa: E402
from repro.algorithms.sorting import CGMSampleSort  # noqa: E402
from repro.core.simulator import build_params  # noqa: E402
from repro.core.parsim import ParallelEMSimulation  # noqa: E402
from repro.core.seqsim import SequentialEMSimulation  # noqa: E402
from repro.params import MachineParams  # noqa: E402
from repro.workloads import random_linked_list, random_permutation, uniform_keys  # noqa: E402

SEED = 3

#: (name, engine, engine kwargs) — the benchmark trajectory.
CONFIGS = [
    ("seq_reference", "sequential", {}),
    ("seq_fast", "sequential", {"context_cache": True, "fast_io": True}),
    ("par_inline", "parallel", {}),
    ("par_fast_inline", "parallel", {"context_cache": True, "fast_io": True}),
    (
        "par_fast_process",
        "parallel",
        {"backend": "process", "context_cache": True, "fast_io": True},
    ),
    (
        "seq_fast_vector",
        "sequential",
        {"context_cache": True, "fast_io": True, "records": "vector"},
    ),
    (
        "par_fast_process_vector",
        "parallel",
        {
            "backend": "process",
            "context_cache": True,
            "fast_io": True,
            "records": "vector",
        },
    ),
    (
        "seq_fast_observed",
        "sequential",
        {"context_cache": True, "fast_io": True, "observe": True},
    ),
    (
        "par_fast_observed",
        "parallel",
        {"context_cache": True, "fast_io": True, "observe": True},
    ),
    ("seq_file_storage", "sequential", {"storage": "file"}),
    (
        "seq_file_overlap",
        "sequential",
        {"storage": "file", "io_overlap": True},
    ),
    (
        "seq_file_fast_overlap",
        "sequential",
        {
            "storage": "file",
            "io_overlap": True,
            "context_cache": True,
            "fast_io": True,
        },
    ),
]


def _workloads(quick: bool) -> list[dict[str, Any]]:
    """Workload descriptions; ``make(v)`` builds a fresh algorithm."""
    if quick:
        n_sort, n_perm, n_rank, v = 16384, 16384, 4096, 16
    else:
        n_sort, n_perm, n_rank, v = 131072, 65536, 16384, 32
    return [
        {
            "name": "sort",
            "n": n_sort,
            "v": v,
            "make": lambda n=n_sort, v=v: CGMSampleSort(
                uniform_keys(n, seed=SEED), v=v
            ),
        },
        {
            "name": "permute",
            "n": n_perm,
            "v": v,
            "make": lambda n=n_perm, v=v: CGMPermutation(
                uniform_keys(n, seed=SEED), random_permutation(n, seed=SEED), v=v
            ),
        },
        {
            "name": "listrank",
            "n": n_rank,
            "v": v,
            "make": lambda n=n_rank, v=v: CGMListRanking(
                random_linked_list(n, seed=SEED), v=v
            ),
        },
    ]


def _run_config(name: str, engine: str, kwargs: dict, make, v: int) -> dict[str, Any]:
    alg = make()
    kwargs = dict(kwargs)
    records = kwargs.pop("records", None)
    if records is not None:
        alg.set_record_mode(records)
    p = 4 if engine == "parallel" else 1
    machine = MachineParams(p=p, M=1 << 20, D=4, B=32, b=64)
    params = build_params(alg, machine, v=v)
    cls = SequentialEMSimulation if engine == "sequential" else ParallelEMSimulation
    observer = None
    if kwargs.pop("observe", False):
        from repro.obs import Collector

        observer = Collector()
    sim = cls(alg, params, seed=SEED, observer=observer, **kwargs)
    t0 = time.perf_counter()
    outputs, report = sim.run()
    wall = time.perf_counter() - t0
    led = report.ledger
    ratios = [
        s.routing.max_load_ratio for s in report.supersteps if s.routing is not None
    ]
    r = {
        "wall_s": round(wall, 4),
        "io_ops": led.total_io_ops,
        "comm_packets": led.total_comm_packets,
        "comp_ops": led.total_comp,
        "records_io": led.total_records_io,
        "supersteps": len(report.supersteps),
        "lemma2_max_load_ratio": round(max(ratios), 4) if ratios else None,
        "outputs_digest": hash(repr(outputs)) & 0xFFFFFFFF,
    }
    if observer is not None:
        r["telemetry_spans"] = len(observer.spans)
    return r


COUNTED = ("io_ops", "comm_packets", "comp_ops", "records_io", "outputs_digest")


def run_suite(quick: bool) -> tuple[dict[str, Any], list[str]]:
    results: dict[str, Any] = {
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count(),
        },
        "machine_params": {"D": 4, "B": 32, "b": 64, "M": 1 << 20},
        "workloads": {},
    }
    violations: list[str] = []
    for wl in _workloads(quick):
        name, v = wl["name"], wl["v"]
        print(f"== {name} (n={wl['n']}, v={v}) ==")
        configs: dict[str, Any] = {}
        for cname, engine, kwargs in CONFIGS:
            r = _run_config(cname, engine, kwargs, wl["make"], v)
            configs[cname] = r
            print(
                f"  {cname:17s} wall={r['wall_s']:8.3f}s  io={r['io_ops']:7d}  "
                f"comm={r['comm_packets']:6d}  comp={r['comp_ops']:.3g}"
            )
        # Dual-accounting invariant: fast configs must count exactly like
        # their engine's reference config.
        for fast, ref in [
            ("seq_fast", "seq_reference"),
            ("par_fast_inline", "par_inline"),
            ("par_fast_process", "par_inline"),
            ("seq_fast_observed", "seq_reference"),
            ("par_fast_observed", "par_inline"),
            # Vector-plane invariant (DESIGN §10): swapping boxed records
            # for numpy arrays must not move a single counted cost either.
            ("seq_fast_vector", "seq_reference"),
            ("par_fast_process_vector", "par_inline"),
            # Storage-plane invariant (DESIGN §8): moving the tracks out of
            # heap must not move a single counted cost.
            ("seq_file_storage", "seq_reference"),
            # Overlap invariant (DESIGN §12): hiding platter time behind
            # computation must not move a single counted cost either.
            ("seq_file_overlap", "seq_reference"),
            ("seq_file_fast_overlap", "seq_reference"),
        ]:
            for kct in COUNTED:
                if configs[fast][kct] != configs[ref][kct]:
                    violations.append(
                        f"{name}: {fast}.{kct}={configs[fast][kct]} != "
                        f"{ref}.{kct}={configs[ref][kct]}"
                    )
        entry = {
            "n": wl["n"],
            "v": v,
            "configs": configs,
            "speedup_seq_fast": round(
                configs["seq_reference"]["wall_s"] / configs["seq_fast"]["wall_s"], 3
            ),
            "speedup_par_fast_inline": round(
                configs["par_inline"]["wall_s"] / configs["par_fast_inline"]["wall_s"],
                3,
            ),
            "speedup_par_fast_process": round(
                configs["par_inline"]["wall_s"] / configs["par_fast_process"]["wall_s"],
                3,
            ),
            "speedup_seq_fast_vector": round(
                configs["seq_reference"]["wall_s"]
                / configs["seq_fast_vector"]["wall_s"],
                3,
            ),
            "speedup_par_fast_process_vector": round(
                configs["par_inline"]["wall_s"]
                / configs["par_fast_process_vector"]["wall_s"],
                3,
            ),
            "observer_overhead_seq": round(
                configs["seq_fast_observed"]["wall_s"] / configs["seq_fast"]["wall_s"]
                - 1.0,
                4,
            ),
            "observer_overhead_par": round(
                configs["par_fast_observed"]["wall_s"]
                / configs["par_fast_inline"]["wall_s"]
                - 1.0,
                4,
            ),
            # Out-of-core overhead vs the in-heap reference: the overlapped
            # plane's headline is closing the gap the synchronous file
            # plane pays (target <= 2x, stretch 1.5x).
            "ratio_file_sync": round(
                configs["seq_file_storage"]["wall_s"]
                / configs["seq_reference"]["wall_s"],
                3,
            ),
            "ratio_file_overlap": round(
                configs["seq_file_overlap"]["wall_s"]
                / configs["seq_reference"]["wall_s"],
                3,
            ),
            # The acceptance ratio: both planes with their fast knobs on,
            # out-of-core overlapped vs in-heap.
            "ratio_file_overlap_fast": round(
                configs["seq_file_fast_overlap"]["wall_s"]
                / configs["seq_fast"]["wall_s"],
                3,
            ),
        }
        print(
            f"  speedups: seq_fast={entry['speedup_seq_fast']}x  "
            f"par_fast_inline={entry['speedup_par_fast_inline']}x  "
            f"par_fast_process={entry['speedup_par_fast_process']}x  "
            f"seq_fast_vector={entry['speedup_seq_fast_vector']}x"
        )
        print(
            f"  observer overhead: seq={entry['observer_overhead_seq']:+.1%}  "
            f"par={entry['observer_overhead_par']:+.1%}"
        )
        print(
            f"  file plane vs memory: sync={entry['ratio_file_sync']}x  "
            f"overlap={entry['ratio_file_overlap']}x  "
            f"overlap_fast={entry['ratio_file_overlap_fast']}x"
        )
        # Soft signal only: wall-clock noise on shared CI runners dwarfs the
        # span layer's cost (sub-0.2s runs are all jitter), so this never
        # fails the run and only warns when the baseline is measurable.
        for key, base_cfg in (
            ("observer_overhead_seq", "seq_fast"),
            ("observer_overhead_par", "par_fast_inline"),
        ):
            if entry[key] > 0.05 and configs[base_cfg]["wall_s"] >= 0.2:
                print(
                    f"::warning::{name}: {key} = {entry[key]:+.1%} exceeds "
                    "the 5% telemetry budget"
                )
        results["workloads"][name] = entry
    results["workloads"]["sort_large"] = _headline_entry(quick, violations)
    if not quick:
        results["workloads"]["sort_10m"] = _sort_10m_entry(violations)
    results["headline"] = {
        "workload": "sort_large",
        "config": "seq_fast_vector vs seq_reference",
        "speedup": results["workloads"]["sort_large"]["speedup_seq_fast_vector"],
    }
    results["counted_cost_violations"] = violations
    return results, violations


def _headline_entry(quick: bool, violations: list[str]) -> dict[str, Any]:
    """The headline pair: reference object plane vs vectorized fast path.

    A dedicated large-share sort (one sequential engine, few virtual
    processors): the reference run is dominated by per-record interpreter
    work, which the vector plane replaces with ``np.sort``/``searchsorted``
    kernels, while both planes pay the same counted I/O.  The pair must
    agree on every counted cost — the golden discipline of DESIGN §10.
    """
    if quick:
        n, v, M = 32768, 8, 1 << 20
    else:
        n, v, M = 524288, 16, 1 << 21
    data = uniform_keys(n, seed=SEED)
    machine = MachineParams(p=1, M=M, D=4, B=32, b=64)
    configs: dict[str, Any] = {}
    for cname, mode, kw in (
        ("seq_reference", "object", {}),
        ("seq_fast_vector", "vector", {"context_cache": True, "fast_io": True}),
    ):
        alg = CGMSampleSort(list(data), v=v)
        alg.set_record_mode(mode)
        sim = SequentialEMSimulation(
            alg, build_params(alg, machine, v=v), seed=SEED, **kw
        )
        t0 = time.perf_counter()
        outputs, report = sim.run()
        wall = time.perf_counter() - t0
        led = report.ledger
        configs[cname] = {
            "wall_s": round(wall, 4),
            "io_ops": led.total_io_ops,
            "comm_packets": led.total_comm_packets,
            "comp_ops": led.total_comp,
            "records_io": led.total_records_io,
            "outputs_digest": hash(repr(outputs)) & 0xFFFFFFFF,
        }
    for kct in COUNTED:
        if configs["seq_fast_vector"][kct] != configs["seq_reference"][kct]:
            violations.append(
                f"sort_large: seq_fast_vector.{kct}="
                f"{configs['seq_fast_vector'][kct]} != "
                f"seq_reference.{kct}={configs['seq_reference'][kct]}"
            )
    entry = {
        "n": n,
        "v": v,
        "machine_params": {"p": 1, "D": 4, "B": 32, "b": 64, "M": M},
        "configs": configs,
        "speedup_seq_fast_vector": round(
            configs["seq_reference"]["wall_s"]
            / configs["seq_fast_vector"]["wall_s"],
            3,
        ),
    }
    print(f"== sort_large (n={n}, v={v}) ==")
    for cname, r in configs.items():
        print(f"  {cname:17s} wall={r['wall_s']:8.3f}s  io={r['io_ops']:7d}")
    print(f"  speedup: seq_fast_vector={entry['speedup_seq_fast_vector']}x")
    return entry


def _sort_10m_entry(violations: list[str]) -> dict[str, Any]:
    """n=10M sort on the vectorized plane only (full mode; no object twin —
    the boxed run would take minutes).  Verified against ``np.sort``."""
    import numpy as np

    n, v = 10_000_000, 256
    rng = np.random.default_rng(SEED)
    data = rng.integers(0, 1 << 30, size=n, dtype=np.int64)
    machine = MachineParams(p=1, M=1 << 22, D=4, B=1024, b=2048)
    alg = CGMSampleSort(data, v=v)
    alg.set_record_mode("vector")
    sim = SequentialEMSimulation(
        alg,
        build_params(alg, machine, v=v),
        seed=SEED,
        context_cache=True,
        fast_io=True,
    )
    t0 = time.perf_counter()
    outputs, report = sim.run()
    wall = time.perf_counter() - t0
    flat = np.concatenate(
        [np.asarray(o, dtype=np.int64) for o in outputs if len(o)]
    )
    sorted_ok = bool(np.array_equal(flat, np.sort(data)))
    if not sorted_ok:
        violations.append("sort_10m: vectorized output differs from np.sort")
    led = report.ledger
    entry = {
        "n": n,
        "v": v,
        "machine_params": {"p": 1, "D": 4, "B": 1024, "b": 2048, "M": 1 << 22},
        "sorted_ok": sorted_ok,
        "configs": {
            "seq_fast_vector": {
                "wall_s": round(wall, 4),
                "io_ops": led.total_io_ops,
                "comm_packets": led.total_comm_packets,
                "comp_ops": led.total_comp,
                "records_io": led.total_records_io,
                "outputs_digest": int(np.sum(flat % 1000003)) & 0xFFFFFFFF,
            }
        },
    }
    print(f"== sort_10m (n={n}, v={v}, vector plane only) ==")
    print(
        f"  seq_fast_vector   wall={wall:8.3f}s  "
        f"io={led.total_io_ops:7d}  sorted_ok={sorted_ok}"
    )
    return entry


def check_regression(results: dict[str, Any], baseline_path: str) -> None:
    """Soft regression check: warn (never fail) on >2x wall-clock slowdowns."""
    if not os.path.exists(baseline_path):
        print(f"[regression] no baseline at {baseline_path}; skipping")
        return
    with open(baseline_path) as fh:
        base = json.load(fh)
    if base.get("quick") != results.get("quick"):
        print("[regression] baseline ran a different mode; comparing anyway")
    warned = False
    for wname, wl in results["workloads"].items():
        bwl = base.get("workloads", {}).get(wname)
        if not bwl:
            continue
        for cname, cfg in wl["configs"].items():
            bcfg = bwl.get("configs", {}).get(cname)
            if not bcfg or not bcfg.get("wall_s"):
                continue
            ratio = cfg["wall_s"] / bcfg["wall_s"]
            if ratio > 2.0:
                warned = True
                print(
                    f"::warning::perf regression {wname}/{cname}: "
                    f"{cfg['wall_s']}s vs baseline {bcfg['wall_s']}s ({ratio:.2f}x)"
                )
    if not warned:
        print("[regression] within 2x of baseline on every config")


def update_history(
    results: dict[str, Any], path: str, violations: list[str]
) -> None:
    """Append this run to the bench history and judge it against the trend."""
    from repro.obs.trend import append_history, compare_trend, load_history

    mode = "quick" if results.get("quick") else "full"
    flat = {
        f"{mode}:{wname}/{cname}": {
            "wall_s": cfg["wall_s"],
            "io_ops": cfg["io_ops"],
        }
        for wname, wl in results["workloads"].items()
        for cname, cfg in wl["configs"].items()
    }
    append_history(path, flat, t=time.time(), meta={"mode": mode})
    verdict = compare_trend(load_history(path))
    print(f"\n[history] appended to {path}")
    print(verdict.render())
    if verdict.status == "regressed":
        # Soft: wall-clock is hostage to host load; a single slow run warns.
        print("::warning::bench trajectory regressed (wall-clock, soft)")
    elif verdict.status == "counted_drift":
        for reg in verdict.regressions:
            if reg.get("kind") == "counted":
                violations.append(
                    f"history {reg['key']}: io_ops={reg['latest']} drifted "
                    f"from trajectory {reg['seen']}"
                )


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="small inputs (CI smoke)")
    ap.add_argument("--out", default="BENCH_PERF.json", help="output JSON path")
    ap.add_argument(
        "--check-regression",
        metavar="BASELINE",
        default=None,
        help="compare wall times against a baseline BENCH_PERF.json (soft)",
    )
    ap.add_argument(
        "--history",
        metavar="PATH",
        default=os.path.join(os.path.dirname(__file__), "BENCH_HISTORY.jsonl"),
        help="bench-trajectory history file (JSONL, appended every run)",
    )
    ap.add_argument(
        "--no-history",
        action="store_true",
        help="do not append to or judge against the history file",
    )
    args = ap.parse_args(argv)

    results, violations = run_suite(args.quick)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {args.out}")
    print(
        "headline: sort seq fast-path (vector records) speedup = "
        f"{results['headline']['speedup']}x"
    )

    if not args.no_history:
        update_history(results, args.history, violations)
    if args.check_regression:
        check_regression(results, args.check_regression)
    if violations:
        print("\nCOUNTED-COST VIOLATIONS (the fast path broke the model):")
        for vline in violations:
            print(f"  {vline}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
