"""BAKEOFF — the modern-competitor sweep behind ``BENCH_BAKEOFF.json``.

Regenerates the counted-cost bake-off of :mod:`repro.bakeoff`: Guidesort,
the ``M/B``-way merge sort and the buffer-tree sort against the simulated
CGM engine, every engine on the same machine, the same seeded input and
the same parallel-I/O ledger.  Three artifacts:

* the emitted ``BAKEOFF`` table (``benchmarks/results/BAKEOFF.txt``),
* hard assertions — zero output mismatches and zero bound violations
  across the whole sweep (these are the PR's acceptance bars),
* a freshness check of the committed ``BENCH_BAKEOFF.json`` against a
  newly-run full sweep.

The shape claims worth keeping as assertions: in the ``deep`` multi-pass
regime, Guidesort's D-parallel reads and large fan-in beat the textbook
``M/B``-way merge sort whenever ``D > 1``, and every competitor stays
within its own closed-form bound.
"""

import json
from pathlib import Path

from repro.bakeoff import (
    default_sweep,
    format_table,
    run_sweep,
    validate_bakeoff_dict,
)

from .common import emit

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_BAKEOFF.json"


def _headers(payload):
    return ["task", "n", "M", "B", "D", "mode",
            *(f"{e} io/bound" for e in payload["engines"])]


def test_bakeoff_quick_sweep(benchmark):
    """The CI-sized sweep: referee every engine, emit the table."""
    payload = validate_bakeoff_dict(run_sweep(quick=True))
    emit(
        "BAKEOFF-QUICK",
        "competitor bake-off, quick sweep ('!' marks a failed referee check)",
        _headers(payload),
        format_table(payload),
    )
    assert payload["mismatches"] == []
    assert payload["violations"] == []
    assert payload["configs"] >= 4
    # Every joint row actually ran the CGM engine next to the competitors.
    joint = [r for r in payload["rows"] if r["mode"] == "joint"]
    assert joint and all("io_ops" in r["engines"]["cgm"] for r in joint)
    benchmark(run_sweep, default_sweep(quick=True)[:1], ("sort",))


def test_bakeoff_full_sweep_and_artifact(benchmark):
    """The committed ``BENCH_BAKEOFF.json`` matches a fresh full sweep."""
    benchmark(lambda: None)  # timing anchor; the artifact is the product
    payload = validate_bakeoff_dict(run_sweep())
    emit(
        "BAKEOFF",
        "competitor bake-off, full sweep ('!' marks a failed referee check)",
        _headers(payload),
        format_table(payload),
    )
    assert payload["mismatches"] == []
    assert payload["violations"] == []
    assert payload["configs"] >= 12  # the acceptance bar's sweep size

    committed = validate_bakeoff_dict(json.loads(ARTIFACT.read_text()))
    assert committed == payload, (
        "BENCH_BAKEOFF.json is stale; regenerate with "
        "`PYTHONPATH=src python -m repro bakeoff --out BENCH_BAKEOFF.json`"
    )


def test_bakeoff_deep_regime_shape(benchmark):
    """Guidesort's striping story, stated honestly: at equal merge-pass
    counts its D-parallel guide-scheduled refills beat the k-way merge's
    single-block demand refills; the k-way sort only wins where memory is
    so tight that its larger fan-in (``M/B`` vs ``~M/2B``) saves a whole
    pass."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    from repro import workloads
    from repro.baselines import Guidesort, KWayMergeSort
    from repro.params import MachineParams

    def both(n, M, B, D):
        data = [int(x) for x in workloads.uniform_keys(n, seed=0)]
        machine = MachineParams(p=1, M=M, D=D, B=B, b=B)
        gout, gstats = Guidesort(machine).sort(data)
        kout, kstats = KWayMergeSort(machine).sort(data)
        assert gout == sorted(data) == kout
        return gstats, kstats

    for n, M, B, D in ((16384, 512, 16, 4), (32768, 512, 16, 2),
                       (16384, 256, 8, 2)):
        gstats, kstats = both(n, M, B, D)
        assert gstats.merge_passes == kstats.merge_passes
        assert gstats.io_ops < kstats.io_ops, (n, M, B, D)
    # The regime where the textbook sort wins: its fan-in advantage saves
    # an entire pass, which no per-pass read saving can repay.
    gstats, kstats = both(8192, 128, 8, 2)
    assert gstats.merge_passes > kstats.merge_passes
    assert gstats.io_ops > kstats.io_ops
