"""THM1 — the simulation-overhead scaling of Theorem 1.

Theorem 1 bounds the simulated algorithm's I/O time by
``O(G * l * (v/p) * (mu * lambda) / (B * D))`` parallel operations.  The
benchmark drives a fixed communication-heavy BSP algorithm through the
sequential engine while sweeping ``D``, ``B``, ``k``, and ``v``, and checks

* I/O operations scale like ``1/D`` (parallel disks fully used),
* I/O operations scale like ``1/B`` (blocking fully exploited),
* grouping ``k`` virtual processors only changes constants (memory use,
  not asymptotics), and
* the measured/predicted ratio stays within a narrow constant band across
  the sweep — the "adapts to the machine parameters" claim of the paper.
"""

import pytest

from repro.core.simulator import simulate
from repro.params import MachineParams

from .common import emit
from tests.helpers import MultiRoundAccumulate, RingShift


def run_io_ops(D=2, B=16, k=2, v=8, payload=64, rounds=3):
    alg = RingShift(payload_size=payload, rounds=rounds)
    machine = MachineParams(
        p=1, M=max(alg.context_size() * k, D * B), D=D, B=B, b=max(B, 16)
    )
    _, report = simulate(
        RingShift(payload_size=payload, rounds=rounds), machine, v=v, k=k, seed=1
    )
    return report


def test_theorem1_scaling_in_D(benchmark):
    rows = []
    base = None
    for D in (1, 2, 4, 8):
        report = run_io_ops(D=D, payload=256)
        bound = report.theoretical_io_bound()
        if base is None:
            base = report.io_ops
        rows.append(
            (D, report.io_ops, f"{bound:.0f}", f"{report.io_ops / bound:.2f}",
             f"{base / report.io_ops:.2f}x")
        )
    emit(
        "THM1-D",
        "I/O ops vs number of disks D (predicted ~1/D)",
        ["D", "io_ops", "bound l*v*mu*lambda/BD", "ratio", "speedup vs D=1"],
        rows,
    )
    ops = {int(r[0]): r[1] for r in rows}
    assert ops[8] <= ops[1] / 4  # near-linear disk scaling
    benchmark(run_io_ops, 4, 16, 2, 8, 256)


def test_theorem1_scaling_in_B(benchmark):
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    rows = []
    for B in (8, 32, 128):
        report = run_io_ops(B=B, payload=256)
        rows.append((B, report.io_ops))
    emit(
        "THM1-B",
        "I/O ops vs block size B (predicted ~1/B until one block fits all)",
        ["B", "io_ops"],
        rows,
    )
    ops = dict(rows)
    assert ops[128] < ops[8] / 2


def test_theorem1_scaling_in_v(benchmark):
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    rows = []
    for v in (4, 8, 16, 32):
        report = run_io_ops(v=v, payload=64)
        rows.append((v, report.io_ops, f"{report.io_ops / v:.1f}"))
    emit(
        "THM1-v",
        "I/O ops vs virtual processors v (predicted ~linear)",
        ["v", "io_ops", "io_ops/v"],
        rows,
    )
    per_v = [r[1] / r[0] for r in rows]
    assert max(per_v) <= 3 * min(per_v)


def test_theorem1_group_size_k_constant_factor(benchmark):
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    rows = []
    for k in (1, 2, 4, 8):
        report = run_io_ops(k=k, v=8, payload=128)
        rows.append((k, report.io_ops))
    emit(
        "THM1-k",
        "I/O ops vs group size k (constant-factor effect only)",
        ["k", "io_ops"],
        rows,
    )
    ops = [r[1] for r in rows]
    assert max(ops) <= 3 * min(ops)


def test_theorem1_parallel_processors(benchmark):
    """I/O per processor drops ~linearly with p (Theorem 1's v/p factor)."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    alg_factory = lambda: MultiRoundAccumulate(rounds=3)
    rows = []
    for p in (1, 2, 4):
        alg = alg_factory()
        machine = MachineParams(
            p=p, M=alg.context_size() * 2, D=2, B=16, b=16
        )
        _, report = simulate(alg_factory(), machine, v=8, k=2, seed=3)
        rows.append((p, report.io_ops))
    emit(
        "THM1-p",
        "per-processor I/O ops vs real processors p (predicted ~v/p)",
        ["p", "io_ops (max over procs)"],
        rows,
    )
    ops = dict(rows)
    assert ops[4] <= ops[1]  # no worse; typically ~1/p
