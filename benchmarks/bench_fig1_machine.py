"""FIG1 — the EM-BSP machine model (Figure 1 of the paper).

Figure 1 is the machine diagram: ``p`` processors, each with local memory
``M`` and ``D`` disks, connected by a router.  This benchmark exercises the
simulated machine across a (p, D, B) grid and verifies its defining cost
property: one parallel I/O operation moves up to ``D x B`` records at cost
``G``, independent of how many disks participate.
"""

import pytest

from repro.emio.disk import Block
from repro.emio.diskarray import DiskArray
from repro.params import MachineParams, ParameterError

from .common import emit


def sequential_scan_ops(D: int, B: int, nrecords: int) -> int:
    """Parallel ops to write + read nrecords through a D-disk array."""
    array = DiskArray(D, B)
    nblocks = -(-nrecords // B)
    array.write_batched(
        (j % D, j // D, Block(records=[0] * min(B, nrecords - j * B)))
        for j in range(nblocks)
    )
    array.read_batched((j % D, j // D) for j in range(nblocks))
    return array.parallel_ops


def test_fig1_machine_grid(benchmark):
    n = 4096
    rows = []
    for D in (1, 2, 4, 8):
        for B in (16, 64):
            ops = sequential_scan_ops(D, B, n)
            ideal = 2 * -(-n // (D * B))
            rows.append((D, B, n, ops, ideal, f"{ops / ideal:.2f}"))
    emit(
        "FIG1",
        "one parallel I/O op moves D*B records (cost G each)",
        ["D", "B", "records", "measured ops", "ideal 2n/DB", "ratio"],
        rows,
    )
    # Full disk parallelism: measured == ideal for striped scans.
    for D, B, n_, ops, ideal, _ in rows:
        assert ops == ideal
    benchmark(sequential_scan_ops, 4, 64, n)


def test_fig1_memory_constraint(benchmark):
    """The model requires M >= D*B (one block per local disk in memory)."""
    benchmark(lambda: None)  # timing anchor; the emitted table is the artifact
    with pytest.raises(ParameterError):
        MachineParams(M=64, D=8, B=16)
    MachineParams(M=128, D=8, B=16)  # boundary case is legal


def test_fig1_partial_op_same_cost(benchmark):
    """An operation touching fewer than D disks costs the same one op."""

    def partial(D=8):
        array = DiskArray(D, 16)
        array.parallel_write([(0, 0, Block(records=[1]))])  # 1 of 8 disks
        array.parallel_write(
            [(d, 1, Block(records=[d])) for d in range(D)]
        )  # all 8
        return array.parallel_ops

    assert partial() == 2
    benchmark(partial)
