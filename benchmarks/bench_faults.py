"""FAULTS — the price of robustness: fault injection, retries, recovery.

The paper's model assumes perfect devices; this experiment measures what the
robustness layer (checksummed blocks, bounded retries, superstep
checkpoints — see DESIGN.md's robustness section) costs on top of the
fault-free simulation, and verifies the layer's core guarantee: *outputs are
bit-identical to the fault-free run* at every fault rate, including a
permanent mid-run disk death survived via checkpoint recovery.

Two tables:

* **FAULTS-RATES** — a sorting workload swept over transient-fault rates
  (0%, 1%, 5%, 10% per access): I/O operations, retry operations, stall
  op-equivalents, and the I/O-time overhead ratio versus fault-free.
* **FAULTS-DEATH** — the same workload with one drive dying mid-run, with
  checkpointing on: recoveries, degraded writes, checkpoint/recovery I/O.
"""

import random

import pytest

from repro.algorithms import CGMSampleSort
from repro.core.simulator import simulate
from repro.emio.faults import FaultPlan
from repro.params import MachineParams

from .common import emit

V = 8
MACHINE = MachineParams(p=1, M=1 << 13, D=4, B=32, b=64)


def sort_data(n=1024, seed=11):
    rnd = random.Random(seed)
    return [rnd.randrange(10**6) for _ in range(n)]


def run_sort(faults=None, checkpoint=False, seed=4):
    data = sort_data()
    return simulate(
        CGMSampleSort(list(data), v=V), MACHINE, v=V, seed=seed,
        faults=faults, checkpoint=checkpoint,
    )


def test_fault_rate_sweep(benchmark):
    base_out, base_rep = run_sort()
    base_io_time = base_rep.ledger.total_io_time()
    rows = [(0.0, base_rep.io_ops, 0, 0, 1.0)]
    for rate in (0.01, 0.05, 0.10):
        plan = FaultPlan(
            seed=0,
            read_error_rate=rate,
            write_error_rate=rate / 2,
            corruption_rate=rate / 5,
            latency_rate=rate,
        )
        out, rep = run_sort(faults=plan, checkpoint=True)
        assert out == base_out  # robustness guarantee: outputs exact
        rows.append(
            (
                rate,
                rep.io_ops,
                rep.faults.retry_ops,
                rep.faults.stall_ops,
                rep.ledger.total_io_time() / base_io_time,
            )
        )
    emit(
        "FAULTS-RATES",
        f"sample sort n=1024 v={V}: robustness overhead vs transient fault rate",
        ["rate", "io_ops", "retry_ops", "stall_ops", "io_time_ratio"],
        rows,
    )
    # Overhead grows with the fault rate but stays modest: bounded retries
    # touch only the failed slots, not whole phases.
    ratios = [r[4] for r in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] < 2.5
    benchmark(run_sort)


def test_disk_death_recovery():
    base_out, base_rep = run_sort()
    plan = FaultPlan(seed=1, read_error_rate=0.01, dead_disk=2, dead_after=150)
    out, rep = run_sort(faults=plan, checkpoint=True)
    assert out == base_out  # the run survived losing a drive, exactly
    f = rep.faults
    emit(
        "FAULTS-DEATH",
        f"sample sort n=1024 v={V}: one drive dies mid-run (checkpointed)",
        ["metric", "value"],
        [
            ("supersteps", rep.num_supersteps),
            ("io_ops", rep.io_ops),
            ("disks_died", f.disks_died),
            ("recoveries", f.recoveries),
            ("degraded_writes", f.degraded_writes),
            ("checkpoints", f.checkpoints_taken),
            ("checkpoint_io_ops", f.checkpoint_io_ops),
            ("recovery_io_ops", f.recovery_io_ops),
            ("io_ops_vs_faultfree", round(rep.io_ops / base_rep.io_ops, 2)),
        ],
    )
    assert f.disks_died == 1
    assert f.recoveries >= 1
    assert f.degraded_writes > 0


if __name__ == "__main__":  # pragma: no cover - manual run convenience
    pytest.main([__file__, "-q", "-p", "no:cacheprovider"])
