"""Unit tests for the fast-path substrate in the emio layer.

Covers the O(1) disk occupancy counter, the arithmetic I/O charging of
``charge_batched`` (it must reproduce the physical batched primitives'
counters exactly), the single-copy ``pack_records``, the memoized
``Block.validate``, and the gating of the fast data plane.
"""

import random

import pytest

from repro.emio.disk import Block, Disk, DiskError
from repro.emio.diskarray import DiskArray
from repro.emio.faults import FaultPlan
from repro.emio.layout import pack_records, unpack_records
from repro.emio.trace import IOTrace


def blk(i, B=8):
    return Block(records=[i] * B)


class TestOccupancyCounter:
    def test_counter_matches_scan(self):
        disk = Disk(0, B=8)
        rng = random.Random(7)
        for _ in range(500):
            t = rng.randrange(40)
            action = rng.random()
            if action < 0.5:
                disk.write_track(t, blk(t))
            elif action < 0.8:
                disk.write_track(t, None)
            else:
                disk.discard_track(t)
            assert disk.used_tracks == sum(1 for _ in disk.occupied())

    def test_overwrite_does_not_double_count(self):
        disk = Disk(0, B=8)
        disk.write_track(3, blk(1))
        disk.write_track(3, blk(2))
        assert disk.used_tracks == 1
        disk.write_track(3, None)
        assert disk.used_tracks == 0
        disk.write_track(3, None)
        assert disk.used_tracks == 0

    def test_discard_missing_track_is_noop(self):
        disk = Disk(0, B=8)
        disk.discard_track(9)
        assert disk.used_tracks == 0


class TestChargeBatched:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_write_charge_matches_physical(self, seed):
        """charge_batched must leave the array's counters exactly where the
        physical write_batched leaves them."""
        rng = random.Random(seed)
        D = 4
        ops = [
            (rng.randrange(D), rng.randrange(30), blk(i)) for i in range(rng.randrange(1, 60))
        ]
        physical = DiskArray(D, 8)
        rounds_physical = physical.write_batched(list(ops))
        charged = DiskArray(D, 8, fast_io=True)
        rounds_charged = charged.charge_batched("W", [(d, t) for d, t, _b in ops])
        assert rounds_charged == rounds_physical
        assert charged.parallel_ops == physical.parallel_ops
        for dp, dc in zip(physical.disks, charged.disks):
            assert dc.writes == dp.writes
            assert dc.high_water == dp.high_water

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_read_charge_matches_physical(self, seed):
        rng = random.Random(100 + seed)
        D = 4
        addrs = [
            (rng.randrange(D), rng.randrange(30)) for _ in range(rng.randrange(1, 60))
        ]
        physical = DiskArray(D, 8)
        physical.read_batched(list(addrs))
        charged = DiskArray(D, 8, fast_io=True)
        charged.charge_batched("R", addrs)
        assert charged.parallel_ops == physical.parallel_ops
        for dp, dc in zip(physical.disks, charged.disks):
            assert dc.reads == dp.reads

    def test_empty_batch_charges_nothing(self):
        array = DiskArray(4, 8, fast_io=True)
        assert array.charge_batched("R", []) == 0
        assert array.parallel_ops == 0

    def test_requires_fast_data_plane(self):
        with pytest.raises(DiskError, match="fast data plane"):
            DiskArray(4, 8).charge_batched("R", [(0, 0)])

    def test_rejects_bad_kind(self):
        array = DiskArray(4, 8, fast_io=True)
        with pytest.raises(DiskError, match="kind"):
            array.charge_batched("X", [(0, 0)])


class TestFastPlaneGating:
    def test_plain_array_is_not_fast(self):
        assert DiskArray(4, 8).fast_data_plane is False

    def test_fast_io_enables(self):
        assert DiskArray(4, 8, fast_io=True).fast_data_plane is True

    def test_trace_disables(self):
        array = DiskArray(4, 8, fast_io=True)
        IOTrace.attach(array)
        assert array.fast_data_plane is False

    def test_faults_disable(self):
        plan = FaultPlan(seed=0, read_error_rate=0.5)
        array = DiskArray(4, 8, faults=plan, fast_io=True)
        assert array.fast_data_plane is False

    def test_bounded_capacity_disables(self):
        array = DiskArray(4, 8, ntracks=16, fast_io=True)
        assert array.fast_data_plane is False

    def test_dead_disk_disables(self):
        array = DiskArray(4, 8, fast_io=True)
        array.dead_disks.add(2)
        assert array.fast_data_plane is False

    def test_fast_primitives_count_like_reference(self):
        """The short-circuited primitives store the same blocks and count
        the same accesses as the reference plane."""
        ref = DiskArray(4, 8)
        fast = DiskArray(4, 8, fast_io=True)
        ops = [(d, 0, blk(d)) for d in range(4)]
        for arr in (ref, fast):
            arr.parallel_write(list(ops))
            arr.parallel_read([(d, 0) for d in range(4)])
        assert fast.parallel_ops == ref.parallel_ops == 2
        for dr, df in zip(ref.disks, fast.disks):
            assert (df.reads, df.writes, df.used_tracks) == (
                dr.reads,
                dr.writes,
                dr.used_tracks,
            )
            assert df.peek(0).records == dr.peek(0).records


class TestPackRecords:
    def test_roundtrip_from_list(self):
        records = list(range(23))
        blocks = pack_records(records, B=8, dest=5)
        assert [b.seq for b in blocks] == [0, 1, 2]
        assert all(b.dest == 5 for b in blocks)
        assert unpack_records(blocks) == records

    def test_accepts_non_list_sequences(self):
        records = tuple(range(17))
        blocks = pack_records(records, B=8)
        assert unpack_records(blocks) == list(records)
        assert all(isinstance(b.records, list) for b in blocks)

    def test_accepts_generators(self):
        blocks = pack_records((i * i for i in range(10)), B=4)
        assert unpack_records(blocks) == [i * i for i in range(10)]

    def test_blocks_are_fresh_lists(self):
        records = list(range(8))
        [block] = pack_records(records, B=8)
        block.records[0] = -1
        assert records[0] == 0


class TestValidateMemo:
    def test_revalidates_for_different_bound(self):
        block = Block(records=list(range(5)))
        block.validate(8)
        with pytest.raises(DiskError, match="exceeds block size"):
            block.validate(4)

    def test_memo_hits_same_bound(self):
        block = Block(records=list(range(5)))
        block.validate(8)
        assert block._vB == 8
        block.validate(8)
        assert block._vB == 8

    def test_oversized_block_rejected_and_not_memoized(self):
        block = Block(records=list(range(9)))
        with pytest.raises(DiskError):
            block.validate(8)
        assert getattr(block, "_vB", None) is None
