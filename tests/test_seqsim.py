"""Integration tests for Algorithm 1 (sequential EM simulation).

The central property is invariant **I3** (simulation transparency): the EM
simulation must produce bit-identical outputs to the in-memory reference
runner, for every algorithm, over a grid of machine parameters.
"""

import pytest

from repro.bsp.runner import run_reference
from repro.core.seqsim import SequentialEMSimulation
from repro.params import BSPParams, MachineParams, ParameterError, SimulationParams

from .helpers import (
    AllToAllExchange,
    MultiRoundAccumulate,
    NoCommunication,
    RingShift,
    TotalExchangeSum,
)


def make_params(alg, v, D=2, B=16, k=None, M=None):
    mu = alg.context_size()
    if M is None:
        M = max(mu * (k or 2), D * B)
    return SimulationParams(
        machine=MachineParams(p=1, M=M, D=D, B=B, b=B),
        bsp=BSPParams(v=v, mu=mu, gamma=max(alg.comm_bound(), 1)),
        k=k,
    )


ALGS = [
    lambda: RingShift(payload_size=4, rounds=1),
    lambda: RingShift(payload_size=40, rounds=3),
    lambda: AllToAllExchange(),
    lambda: TotalExchangeSum(),
    lambda: MultiRoundAccumulate(rounds=4),
    lambda: NoCommunication(),
]


@pytest.mark.parametrize("alg_factory", ALGS)
@pytest.mark.parametrize("D", [1, 2, 4])
def test_transparency_vs_reference(alg_factory, D):
    v = 8
    ref_out, _ = run_reference(alg_factory(), v)
    params = make_params(alg_factory(), v, D=D, k=2)
    em_out, _ = SequentialEMSimulation(alg_factory(), params, seed=1).run()
    assert em_out == ref_out


@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_transparency_across_group_sizes(k):
    v = 8
    alg = AllToAllExchange
    ref_out, _ = run_reference(alg(), v)
    params = make_params(alg(), v, D=2, k=k)
    em_out, _ = SequentialEMSimulation(alg(), params, seed=3).run()
    assert em_out == ref_out


@pytest.mark.parametrize("B", [4, 16, 64])
def test_transparency_across_block_sizes(B):
    v = 8
    alg = TotalExchangeSum
    ref_out, _ = run_reference(alg(), v)
    params = make_params(alg(), v, D=3, B=B, k=2)
    em_out, _ = SequentialEMSimulation(alg(), params, seed=5).run()
    assert em_out == ref_out


@pytest.mark.parametrize("seed", range(5))
def test_transparency_independent_of_seed(seed):
    v = 8
    ref_out, _ = run_reference(MultiRoundAccumulate(), v)
    params = make_params(MultiRoundAccumulate(), v, D=4, k=2)
    em_out, _ = SequentialEMSimulation(
        MultiRoundAccumulate(), params, seed=seed
    ).run()
    assert em_out == ref_out


def test_pad_to_gamma_does_not_change_output():
    v = 8
    ref_out, _ = run_reference(AllToAllExchange(), v)
    params = make_params(AllToAllExchange(), v, D=2, k=2)
    em_out, report = SequentialEMSimulation(
        AllToAllExchange(), params, seed=2, pad_to_gamma=True
    ).run()
    assert em_out == ref_out
    # Padding forces the worst-case block count per group.
    assert report.io_ops >= 0


def test_round_robin_ablation_preserves_output():
    v = 8
    ref_out, _ = run_reference(AllToAllExchange(), v)
    params = make_params(AllToAllExchange(), v, D=4, k=2)
    em_out, _ = SequentialEMSimulation(
        AllToAllExchange(), params, seed=2, round_robin_writes=True
    ).run()
    assert em_out == ref_out


def test_report_phase_totals_match_ledger():
    v = 8
    params = make_params(MultiRoundAccumulate(), v, D=2, k=2)
    _, report = SequentialEMSimulation(MultiRoundAccumulate(), params).run()
    assert report.io_ops == report.ledger.total_io_ops
    assert report.num_supersteps == report.ledger.num_supersteps


def test_requires_single_processor():
    alg = NoCommunication()
    params = SimulationParams(
        machine=MachineParams(p=2, M=4096, D=1, B=16),
        bsp=BSPParams(v=8, mu=alg.context_size(), gamma=1),
        k=2,
    )
    with pytest.raises(ParameterError):
        SequentialEMSimulation(alg, params)


def test_context_region_space_is_preallocated():
    v = 8
    alg = NoCommunication()
    params = make_params(alg, v, D=2, B=16, k=2)
    _, report = SequentialEMSimulation(alg, params).run()
    # v * ceil(mu/B) blocks spread over D disks (invariant I5), plus scratch.
    min_tracks = v * -(-params.bsp.mu // 16) // 2
    assert report.disk_space_tracks >= min_tracks


def test_scales_to_large_inputs():
    """n = 65536 through the full simulation in well under a second."""
    from repro import workloads
    from repro.algorithms import CGMSampleSort
    from repro.core.simulator import simulate

    n, v = 65536, 16
    data = workloads.uniform_keys(n, seed=1)
    alg = CGMSampleSort(data, v)
    machine = MachineParams(p=1, M=2 * alg.context_size(), D=8, B=128, b=128)
    out, rep = simulate(CGMSampleSort(data, v), machine, v=v, seed=1)
    assert [x for part in out for x in part] == sorted(data)
    # A handful of data scans for lambda=4 supersteps.
    assert rep.io_ops / (n / machine.io_bandwidth) < 25
