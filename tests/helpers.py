"""Shared test fixtures: small BSP algorithms exercising the simulation."""

from __future__ import annotations

from repro.bsp.program import BSPAlgorithm, VPContext

__all__ = [
    "RingShift",
    "AllToAllExchange",
    "TotalExchangeSum",
    "MultiRoundAccumulate",
    "NoCommunication",
]


class RingShift(BSPAlgorithm):
    """Each vp sends a payload around a ring; output is what arrived."""

    def __init__(self, payload_size: int = 4, rounds: int = 1):
        self.payload_size = payload_size
        self.rounds = rounds

    def context_size(self) -> int:
        return 512 + 8 * self.payload_size

    def comm_bound(self) -> int:
        return self.payload_size + 8

    def initial_state(self, pid: int, nprocs: int):
        return {"items": [pid * 1000 + i for i in range(self.payload_size)]}

    def superstep(self, ctx: VPContext) -> None:
        if ctx.step < self.rounds:
            if ctx.step > 0:
                ctx.state["items"] = list(ctx.incoming[0].payload)
            ctx.send((ctx.pid + 1) % ctx.nprocs, ctx.state["items"])
            ctx.charge(len(ctx.state["items"]))
        else:
            ctx.state["items"] = list(ctx.incoming[0].payload)
            ctx.vote_halt()

    def output(self, pid: int, state) -> list:
        return state["items"]


class AllToAllExchange(BSPAlgorithm):
    """Every vp sends a distinct record to every vp; output = sorted arrivals."""

    def context_size(self) -> int:
        return 4096

    def comm_bound(self) -> int:
        return 256

    def initial_state(self, pid: int, nprocs: int):
        return {"got": None}

    def superstep(self, ctx: VPContext) -> None:
        if ctx.step == 0:
            for dest in range(ctx.nprocs):
                ctx.send(dest, [ctx.pid * ctx.nprocs + dest])
        else:
            ctx.state["got"] = sorted(r for m in ctx.incoming for r in m.payload)
            ctx.vote_halt()

    def output(self, pid: int, state):
        return state["got"]


class TotalExchangeSum(BSPAlgorithm):
    """Gather-to-0 then broadcast: all vps end with the global sum."""

    def context_size(self) -> int:
        return 8192

    def comm_bound(self) -> int:
        return 1024

    def initial_state(self, pid: int, nprocs: int):
        return {"value": (pid + 1) ** 2, "sum": None}

    def superstep(self, ctx: VPContext) -> None:
        if ctx.step == 0:
            ctx.send(0, [ctx.state["value"]])
        elif ctx.step == 1:
            if ctx.pid == 0:
                total = sum(r for m in ctx.incoming for r in m.payload)
                for dest in range(ctx.nprocs):
                    ctx.send(dest, [total])
        else:
            ctx.state["sum"] = ctx.incoming[0].payload[0]
            ctx.vote_halt()

    def output(self, pid: int, state):
        return state["sum"]


class MultiRoundAccumulate(BSPAlgorithm):
    """`rounds` supersteps of neighbour exchange with growing state."""

    def __init__(self, rounds: int = 4):
        self.rounds = rounds

    def context_size(self) -> int:
        return 2048 + 64 * self.rounds

    def comm_bound(self) -> int:
        return 16

    def initial_state(self, pid: int, nprocs: int):
        return {"trace": [pid]}

    def superstep(self, ctx: VPContext) -> None:
        if ctx.step > 0:
            for m in ctx.incoming:
                ctx.state["trace"].extend(m.payload)
        if ctx.step < self.rounds:
            ctx.send((ctx.pid + ctx.step + 1) % ctx.nprocs, [ctx.pid * 10 + ctx.step])
        else:
            ctx.vote_halt()

    def output(self, pid: int, state):
        return state["trace"]


class NoCommunication(BSPAlgorithm):
    """Pure local computation; checks the zero-message path."""

    def context_size(self) -> int:
        return 256

    def comm_bound(self) -> int:
        return 0

    def initial_state(self, pid: int, nprocs: int):
        return {"x": pid}

    def superstep(self, ctx: VPContext) -> None:
        ctx.state["x"] = ctx.state["x"] * 2 + 1
        ctx.charge(1)
        ctx.vote_halt()

    def output(self, pid: int, state):
        return state["x"]
