"""Unit tests for core components: ContextStore, stats, report bounds."""

import pytest

from repro.core.context import ContextStore
from repro.core.stats import PhaseBreakdown, SimulationReport, SuperstepReport
from repro.core.routing import RoutingStats
from repro.costs import CostLedger
from repro.emio.disk import DiskError
from repro.emio.diskarray import DiskArray
from repro.emio.layout import RegionAllocator
from repro.params import BSPParams, MachineParams, SimulationParams


def make_store(nslots=4, mu=256, B=16, D=2):
    array = DiskArray(D, B)
    alloc = RegionAllocator(array)
    return array, ContextStore(array, alloc, nslots, mu, B)


class TestContextStore:
    def test_save_load_roundtrip(self):
        _, store = make_store()
        store.save(0, {"a": [1, 2, 3]})
        store.save(3, ("x", 4.5))
        assert store.load(0) == {"a": [1, 2, 3]}
        assert store.load(3) == ("x", 4.5)

    def test_group_roundtrip(self):
        _, store = make_store()
        states = [{"pid": i, "data": list(range(i * 3))} for i in range(4)]
        store.save_group(range(4), states)
        assert store.load_group(range(4)) == states

    def test_only_used_blocks_transferred(self):
        array, store = make_store(mu=1024, B=16)
        store.save(0, 7)  # tiny context: one block
        array.reset_stats()
        store.load(0)
        assert array.parallel_ops == 1

    def test_shrinking_context_reads_correctly(self):
        _, store = make_store(mu=1024)
        store.save(1, list(range(500)))  # many blocks
        store.save(1, "small")  # fewer blocks; stale ones must be ignored
        assert store.load(1) == "small"

    def test_mu_enforced(self):
        _, store = make_store(mu=8)
        with pytest.raises(DiskError):
            store.save(0, list(range(10_000)))

    def test_area_preallocated(self):
        array, store = make_store(nslots=8, mu=256, B=16, D=2)
        # ceil(256/16) = 16 blocks per context, 8 slots over 2 disks.
        assert store.tracks_per_disk == 8 * 16 // 2


def make_report(io_per_step=(10, 20)):
    machine = MachineParams(p=1, M=1024, D=2, B=16, G=3.0)
    params = SimulationParams(
        machine=machine, bsp=BSPParams(v=8, mu=64, gamma=32), k=2
    )
    ledger = CostLedger(machine)
    report = SimulationReport(params=params, ledger=ledger)
    for i, io in enumerate(io_per_step):
        ledger.begin_superstep()
        ledger.charge_io(io)
        report.supersteps.append(
            SuperstepReport(
                index=i,
                phases=PhaseBreakdown(fetch_context=io),
                routing=RoutingStats(total_blocks=5, max_load_ratio=1.0 + i),
            )
        )
    ledger.close()
    return report


class TestSimulationReport:
    def test_io_totals(self):
        report = make_report()
        assert report.io_ops == 30
        assert report.io_time == 90.0  # G = 3
        assert report.num_supersteps == 2

    def test_max_load_ratio_is_worst(self):
        assert make_report().max_load_ratio == 2.0

    def test_theoretical_bound(self):
        report = make_report()
        # lambda * (v/p) * mu / (B*D) = 2 * 8 * 64 / 32 = 32.
        assert report.theoretical_io_bound() == 32.0
        assert report.io_efficiency() == pytest.approx(30 / 32)

    def test_summary_keys(self):
        s = make_report().summary()
        assert {"io_ops_supersteps", "theory_io_bound", "max_load_ratio"} <= set(s)

    def test_phase_breakdown_total(self):
        ph = PhaseBreakdown(
            fetch_context=1, fetch_messages=2, write_messages=3,
            write_context=4, reorganize=5,
        )
        assert ph.total == 15
