"""Tests for biconnected components (Tarjan–Vishkin composition)."""

import networkx as nx
import pytest

from repro import workloads
from repro.algorithms.graphs.biconnectivity import (
    biconnected_components,
    root_tree,
)
from repro.core.simulator import simulate
from repro.params import MachineParams

MACHINE = MachineParams(p=1, M=1 << 17, D=2, B=32, b=32)


def nx_bicomps(nverts, edges):
    g = nx.Graph()
    g.add_nodes_from(range(nverts))
    g.add_edges_from(edges)
    return sorted(
        (
            frozenset((min(a, b), max(a, b)) for a, b in comp)
            for comp in nx.biconnected_component_edges(g)
        ),
        key=lambda s: sorted(s),
    )


class TestRootTree:
    @pytest.mark.parametrize("n,v", [(2, 2), (12, 4), (40, 4)])
    def test_roots_scrambled_tree(self, n, v):
        import random

        edges = workloads.random_tree_edges(n, seed=n)
        rng = random.Random(n)
        scrambled = [
            (b, a) if rng.random() < 0.5 else (a, b) for a, b in edges
        ]
        rooted = root_tree(scrambled, 0, v)
        assert sorted((min(e), max(e)) for e in rooted) == sorted(
            (min(e), max(e)) for e in edges
        )
        parent = {c: p for p, c in rooted}
        assert 0 not in parent
        # Every node reaches the root through parents.
        for node in range(1, n):
            cur, hops = node, 0
            while cur != 0:
                cur = parent[cur]
                hops += 1
                assert hops <= n
        # The orientation matches the original parent relation.
        assert sorted(rooted) == sorted(edges)

    def test_empty(self):
        assert root_tree([], 0, 2) == []


class TestBiconnectedComponents:
    def test_single_cycle(self):
        n = 6
        edges = [(i, (i + 1) % n) for i in range(n)]
        comps = biconnected_components(n, edges, 4)
        assert len(comps) == 1
        assert comps[0] == frozenset((min(a, b), max(a, b)) for a, b in edges)

    def test_two_cycles_sharing_a_vertex(self):
        # 0-1-2-0 and 2-3-4-2: articulation point 2.
        edges = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]
        comps = biconnected_components(5, edges, 4)
        assert len(comps) == 2
        assert frozenset([(0, 1), (1, 2), (0, 2)]) in comps
        assert frozenset([(2, 3), (3, 4), (2, 4)]) in comps

    def test_bridge_is_own_component(self):
        edges = [(0, 1), (1, 2), (0, 2), (2, 3)]  # triangle + pendant bridge
        comps = biconnected_components(4, edges, 4)
        assert frozenset([(2, 3)]) in comps
        assert len(comps) == 2

    def test_tree_every_edge_is_a_component(self):
        n = 12
        edges = workloads.random_tree_edges(n, seed=4)
        comps = biconnected_components(n, edges, 4)
        assert len(comps) == n - 1
        assert all(len(c) == 1 for c in comps)

    @pytest.mark.parametrize(
        "n,m,seed", [(12, 20, 1), (20, 30, 2), (30, 45, 3), (25, 60, 4)]
    )
    def test_matches_networkx_connected(self, n, m, seed):
        edges = workloads.random_graph_edges(n, m, seed=seed, connected=True)
        assert biconnected_components(n, edges, 4) == nx_bicomps(n, edges)

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_matches_networkx_disconnected(self, seed):
        n = 24
        edges = workloads.random_graph_edges(n, 20, seed=seed, connected=False)
        assert biconnected_components(n, edges, 4) == nx_bicomps(n, edges)

    def test_parallel_edges_merged(self):
        edges = [(0, 1), (1, 0), (1, 2)]
        comps = biconnected_components(3, edges, 2)
        assert comps == nx_bicomps(3, [(0, 1), (1, 2)])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            biconnected_components(2, [(0, 0)], 2)

    def test_empty_graph(self):
        assert biconnected_components(5, [], 2) == []

    def test_through_em_engine(self):
        n = 16
        edges = workloads.random_graph_edges(n, 26, seed=9, connected=True)
        run = lambda alg, vv: simulate(alg, MACHINE, v=vv, seed=2)[0]
        assert biconnected_components(n, edges, 4, run=run) == nx_bicomps(n, edges)
