"""Tests for Group A CGM algorithms: sorting, permutation, matrix transpose.

Each algorithm is checked (a) for correctness on the reference runner,
(b) for transparency through both EM engines, and (c) for its CGM round
structure (lambda = O(1) supersteps).
"""

import pytest

from repro import workloads
from repro.algorithms import CGMMatrixTranspose, CGMPermutation, CGMSampleSort
from repro.bsp.runner import run_reference
from repro.core.simulator import simulate
from repro.params import MachineParams


def flat(outputs):
    return [x for part in outputs for x in part]


SMALL_MACHINE = MachineParams(p=1, M=1 << 15, D=2, B=32, b=32)
PAR_MACHINE = MachineParams(p=2, M=1 << 15, D=2, B=32, b=32)


class TestSampleSort:
    @pytest.mark.parametrize("n,v", [(16, 4), (100, 4), (256, 8), (64, 8)])
    def test_sorts_reference(self, n, v):
        data = workloads.uniform_keys(n, seed=n + v)
        out, ledger = run_reference(CGMSampleSort(data, v), v)
        assert flat(out) == sorted(data)

    def test_constant_supersteps(self):
        data = workloads.uniform_keys(100, seed=1)
        _, ledger = run_reference(CGMSampleSort(data, 4), 4)
        assert ledger.num_supersteps == CGMSampleSort.LAMBDA

    def test_duplicates(self):
        data = [5] * 30 + [3] * 30 + [9] * 40
        out, _ = run_reference(CGMSampleSort(data, 4), 4)
        assert flat(out) == sorted(data)

    def test_already_sorted(self):
        data = list(range(64))
        out, _ = run_reference(CGMSampleSort(data, 4), 4)
        assert flat(out) == data

    def test_reverse_sorted(self):
        data = list(range(64, 0, -1))
        out, _ = run_reference(CGMSampleSort(data, 4), 4)
        assert flat(out) == sorted(data)

    def test_with_key(self):
        data = [(-x, x) for x in range(32)]
        out, _ = run_reference(CGMSampleSort(data, 4, key=lambda t: t[1]), 4)
        assert flat(out) == sorted(data, key=lambda t: t[1])

    def test_requires_coarseness(self):
        with pytest.raises(ValueError):
            CGMSampleSort([1, 2, 3], v=4)

    def test_em_sequential_matches(self):
        data = workloads.uniform_keys(128, seed=3)
        out, report = simulate(CGMSampleSort(data, 4), SMALL_MACHINE, v=4, seed=9)
        assert flat(out) == sorted(data)
        assert report.io_ops > 0

    def test_em_parallel_matches(self):
        data = workloads.uniform_keys(128, seed=4)
        out, _ = simulate(CGMSampleSort(data, 4), PAR_MACHINE, v=4, k=2, seed=9)
        assert flat(out) == sorted(data)

    def test_balance_bound(self):
        # Regular sampling: no vp receives more than ~2n/v items.
        data = workloads.uniform_keys(400, seed=5)
        v = 4
        out, _ = run_reference(CGMSampleSort(data, v), v)
        assert max(len(part) for part in out) <= 2 * (400 // v) + v


class TestPermutation:
    @pytest.mark.parametrize("n,v", [(32, 4), (100, 4), (128, 8)])
    def test_random_permutation(self, n, v):
        vals = [f"x{i}" for i in range(n)]
        perm = workloads.random_permutation(n, seed=n)
        out, _ = run_reference(CGMPermutation(vals, perm, v), v)
        y = flat(out)
        assert all(y[perm[i]] == vals[i] for i in range(n))

    def test_identity(self):
        vals = list(range(40))
        out, _ = run_reference(CGMPermutation(vals, list(range(40)), 4), 4)
        assert flat(out) == vals

    def test_reversal(self):
        n, v = 64, 4
        vals = list(range(n))
        out, _ = run_reference(
            CGMPermutation(vals, workloads.reversing_permutation(n), v), v
        )
        assert flat(out) == vals[::-1]

    def test_bit_reversal(self):
        perm = workloads.bit_reversal_permutation(6)
        n = len(perm)
        vals = list(range(n))
        out, _ = run_reference(CGMPermutation(vals, perm, 4), 4)
        y = flat(out)
        assert all(y[perm[i]] == i for i in range(n))

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            CGMPermutation([1, 2], [0, 0], 2)

    def test_constant_supersteps(self):
        perm = workloads.random_permutation(64, seed=0)
        _, ledger = run_reference(CGMPermutation(list(range(64)), perm, 4), 4)
        assert ledger.num_supersteps == CGMPermutation.LAMBDA

    def test_em_sequential_matches(self):
        n, v = 96, 4
        perm = workloads.random_permutation(n, seed=7)
        vals = list(range(1000, 1000 + n))
        out, _ = simulate(CGMPermutation(vals, perm, v), SMALL_MACHINE, v=v)
        y = flat(out)
        assert all(y[perm[i]] == vals[i] for i in range(n))

    def test_em_parallel_matches(self):
        n, v = 96, 4
        perm = workloads.random_permutation(n, seed=8)
        vals = list(range(n))
        out, _ = simulate(CGMPermutation(vals, perm, v), PAR_MACHINE, v=v, k=2)
        y = flat(out)
        assert all(y[perm[i]] == vals[i] for i in range(n))


class TestMatrixTranspose:
    @pytest.mark.parametrize("r,c,v", [(8, 8, 4), (4, 16, 4), (16, 4, 8), (5, 7, 5)])
    def test_transpose(self, r, c, v):
        entries = workloads.matrix_entries(r, c, seed=r * c)
        out, _ = run_reference(CGMMatrixTranspose(entries, r, c, v), v)
        got = flat(out)
        for row in range(r):
            for col in range(c):
                assert got[col * r + row] == entries[row * c + col]

    def test_single_row(self):
        entries = list(range(12))
        out, _ = run_reference(CGMMatrixTranspose(entries, 1, 12, 4), 4)
        assert flat(out) == entries  # 1 x c transpose = same sequence

    def test_wrong_entry_count_rejected(self):
        with pytest.raises(ValueError):
            CGMMatrixTranspose([1, 2, 3], 2, 2, 2)

    def test_constant_supersteps(self):
        entries = workloads.matrix_entries(8, 8, seed=0)
        _, ledger = run_reference(CGMMatrixTranspose(entries, 8, 8, 4), 4)
        assert ledger.num_supersteps == CGMMatrixTranspose.LAMBDA

    def test_em_sequential_matches(self):
        r, c, v = 8, 12, 4
        entries = workloads.matrix_entries(r, c, seed=2)
        out, _ = simulate(CGMMatrixTranspose(entries, r, c, v), SMALL_MACHINE, v=v)
        got = flat(out)
        for row in range(r):
            for col in range(c):
                assert got[col * r + row] == entries[row * c + col]

    def test_em_parallel_matches(self):
        r, c, v = 8, 8, 4
        entries = workloads.matrix_entries(r, c, seed=3)
        out, _ = simulate(
            CGMMatrixTranspose(entries, r, c, v), PAR_MACHINE, v=v, k=2
        )
        got = flat(out)
        for row in range(r):
            for col in range(c):
                assert got[col * r + row] == entries[row * c + col]

    def test_double_transpose_is_identity(self):
        r, c, v = 6, 10, 4
        entries = workloads.matrix_entries(r, c, seed=4)
        out1, _ = run_reference(CGMMatrixTranspose(entries, r, c, v), v)
        out2, _ = run_reference(CGMMatrixTranspose(flat(out1), c, r, v), v)
        assert flat(out2) == entries
