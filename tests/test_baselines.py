"""Tests for the baseline EM algorithms (S11).

Every sorter in ``repro.baselines.SORTING_BASELINES`` shares one
constructor/contract, so :class:`TestSortingBaselines` parametrizes over
the registry — registering a new competitor auto-enrolls it in the full
correctness matrix (edge sizes, custom keys, bound compliance, storage and
fast-path plane invisibility) with zero test edits.
"""

import pytest

from repro import workloads
from repro.baselines import (
    SORTING_BASELINES,
    EMMergeSort,
    EMPRAMSimulator,
    EMTranspose,
    NaiveEMPermute,
    PRAMListRanking,
    SibeynKaufmannSimulation,
    SortBasedEMPermute,
)
from repro.bsp.runner import run_reference
from repro.params import MachineParams

MACHINE = MachineParams(p=1, M=256, D=2, B=16, b=16)


@pytest.fixture(params=sorted(SORTING_BASELINES))
def sorter_cls(request):
    """Each registered counted-cost sorter, by registry name."""
    return SORTING_BASELINES[request.param]


class TestSortingBaselines:
    """The shared contract every registered competitor must satisfy."""

    @pytest.mark.parametrize("n", [0, 1, 15, 16, 17, 100, 1000])
    def test_sorts(self, sorter_cls, n):
        data = workloads.uniform_keys(n, seed=n)
        out, stats = sorter_cls(MACHINE).sort(data)
        assert out == sorted(data)
        assert stats.io_ops > 0 or n == 0

    def test_with_key(self, sorter_cls):
        data = [(x % 7, x) for x in range(200)]
        out, _stats = sorter_cls(MACHINE, key=lambda t: t[0]).sort(data)
        assert [t[0] for t in out] == sorted(t[0] for t in data)

    @pytest.mark.parametrize("n", [64, 555, 1000, 4096])
    def test_io_within_closed_form_bound(self, sorter_cls, n):
        sorter = sorter_cls(MACHINE)
        _, stats = sorter.sort(workloads.uniform_keys(n, seed=2))
        assert 0 < stats.io_ops <= sorter.predicted_io_ops(n)

    def test_storage_and_fast_planes_are_counted_invisible(self, sorter_cls):
        data = workloads.uniform_keys(300, seed=4)
        baseline = None
        for storage in ("memory", "file"):
            for fast_io in (False, True):
                out, stats = sorter_cls(
                    MACHINE, storage=storage, fast_io=fast_io
                ).sort(data)
                assert out == sorted(data)
                if baseline is None:
                    baseline = stats.io_ops
                assert stats.io_ops == baseline, (storage, fast_io)

    def test_rejects_multiprocessor(self, sorter_cls):
        with pytest.raises(ValueError):
            sorter_cls(MachineParams(p=2, M=256, D=1, B=16))


class TestEMMergeSortShape:
    """EMMergeSort-specific cost-shape claims (not part of the contract)."""

    def test_multiple_merge_passes(self):
        # n >> M with small fan-in forces several passes.
        machine = MachineParams(p=1, M=64, D=1, B=8, b=8)
        data = workloads.uniform_keys(2048, seed=1)
        out, stats = EMMergeSort(machine).sort(data)
        assert out == sorted(data)
        assert stats.merge_passes >= 2

    def test_io_near_prediction(self):
        sorter = EMMergeSort(MACHINE)
        data = workloads.uniform_keys(4096, seed=2)
        _, stats = sorter.sort(data)
        pred = sorter.predicted_io_ops(4096)
        assert 0.2 * pred <= stats.io_ops <= 5 * pred

    def test_io_scales_linearithmically(self):
        sorter = EMMergeSort(MACHINE)
        _, s1 = sorter.sort(workloads.uniform_keys(1024, seed=3))
        _, s2 = sorter.sort(workloads.uniform_keys(4096, seed=3))
        # 4x data: at least 4x I/O, at most ~6x (one extra pass).
        assert 3.5 * s1.io_ops <= s2.io_ops <= 8 * s1.io_ops


class TestPermutes:
    @pytest.mark.parametrize("n", [1, 32, 100, 257])
    def test_naive_correct(self, n):
        vals = [f"v{i}" for i in range(n)]
        perm = workloads.random_permutation(n, seed=n)
        out, stats = NaiveEMPermute(MACHINE).permute(vals, perm)
        assert all(out[perm[i]] == vals[i] for i in range(n))

    @pytest.mark.parametrize("n", [1, 32, 100, 257])
    def test_sort_based_correct(self, n):
        vals = list(range(n))
        perm = workloads.random_permutation(n, seed=n + 1)
        out, stats = SortBasedEMPermute(MACHINE).permute(vals, perm)
        assert all(out[perm[i]] == vals[i] for i in range(n))

    def test_naive_pays_per_record_on_random_input(self):
        n = 512
        perm = workloads.random_permutation(n, seed=9)
        _, naive = NaiveEMPermute(MACHINE).permute(list(range(n)), perm)
        _, sortb = SortBasedEMPermute(MACHINE).permute(list(range(n)), perm)
        # The unblocked baseline costs ~n ops; the blocked one ~n/DB * passes.
        assert naive.io_ops > n  # at least one op per record
        assert sortb.io_ops < naive.io_ops / 2

    def test_naive_cheap_on_identity(self):
        n = 512
        _, naive = NaiveEMPermute(MACHINE).permute(list(range(n)), list(range(n)))
        # Sequential access pattern hits the one-block cache: ~5 block
        # passes (load, init, source read, dest read-modify-write) instead
        # of ~2 ops per record.
        assert naive.io_ops < 5 * (n / MACHINE.B) + 16
        assert naive.io_ops < n / 2


class TestEMTranspose:
    @pytest.mark.parametrize("r,c", [(4, 4), (8, 16), (3, 7), (1, 10)])
    def test_correct(self, r, c):
        entries = workloads.matrix_entries(r, c, seed=r + c)
        out, _ = EMTranspose(MACHINE).transpose(entries, r, c)
        for row in range(r):
            for col in range(c):
                assert out[col * r + row] == entries[row * c + col]

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            EMTranspose(MACHINE).transpose([1, 2, 3], 2, 2)

    def test_prediction_positive(self):
        assert EMTranspose(MACHINE).predicted_io_ops(64, 64) > 0


class TestPRAMSimulator:
    def test_step_read_compute_write(self):
        sim = EMPRAMSimulator(MACHINE, memory=[10, 20, 30, 40], nprocs=4)
        sim.step(
            reads=lambda i, reg: [i],
            compute=lambda i, vals, reg: ([(i, vals[0] * 2)], reg),
        )
        assert sim.memory() == [20, 40, 60, 80]

    def test_registers_persist(self):
        sim = EMPRAMSimulator(MACHINE, memory=[5, 6], nprocs=2)
        sim.step(
            reads=lambda i, reg: [i],
            compute=lambda i, vals, reg: ([], vals[0]),
        )
        sim.step(
            reads=lambda i, reg: [],
            compute=lambda i, vals, reg: ([(i, reg + 100)], reg),
        )
        assert sim.memory() == [105, 106]

    def test_io_charged_per_step(self):
        sim = EMPRAMSimulator(MACHINE, memory=list(range(64)), nprocs=64)
        sim.step(reads=lambda i, reg: [i], compute=lambda i, v, r: ([], r))
        ops1 = sim.stats.io_ops
        sim.step(reads=lambda i, reg: [i], compute=lambda i, v, r: ([], r))
        assert sim.stats.io_ops >= 2 * ops1 * 0.8  # every step pays again

    @pytest.mark.parametrize("n", [1, 2, 10, 33])
    def test_list_ranking_correct(self, n):
        succ = workloads.random_linked_list(n, seed=n)
        ranks, stats = PRAMListRanking(MACHINE).rank(succ)
        # Ground truth by walking.
        def true_rank(i):
            r = 0
            while succ[i] != i:
                i = succ[i]
                r += 1
            return r

        assert ranks == [true_rank(i) for i in range(n)]
        assert stats.steps == 2 * max(1, (n - 1).bit_length())


class TestSibeynKaufmann:
    def test_transparent(self):
        from .helpers import AllToAllExchange, TotalExchangeSum

        for alg_cls in (AllToAllExchange, TotalExchangeSum):
            ref, _ = run_reference(alg_cls(), 8)
            out, stats = SibeynKaufmannSimulation(alg_cls(), 8, MACHINE).run()
            assert out == ref
            assert stats.io_ops > 0

    def test_no_disk_parallelism(self):
        """All accesses land on one disk regardless of the machine's D."""
        from .helpers import AllToAllExchange

        machine = MachineParams(p=1, M=4096, D=8, B=16, b=16)
        sim = SibeynKaufmannSimulation(AllToAllExchange(), 8, machine)
        sim.run()
        assert sim.array.disks[0].accesses == sim.stats.io_ops
        assert all(d.accesses == 0 for d in sim.array.disks[1:])

    def test_cells_mode_charges_more(self):
        from .helpers import AllToAllExchange

        _, packed = SibeynKaufmannSimulation(
            AllToAllExchange(), 8, MACHINE, mode="packed"
        ).run()
        _, cells = SibeynKaufmannSimulation(
            AllToAllExchange(), 8, MACHINE, mode="cells"
        ).run()
        assert cells.io_ops > packed.io_ops
