"""Golden equivalence suite for the block-storage planes.

Counted I/O is defined by the model and charged before any data moves
(DESIGN §8), so *where* block images live — heap dicts, pread/pwrite track
files, or mmap — must be invisible to everything the model counts: outputs,
the cost ledger, per-superstep phase breakdowns, routing statistics, and
the physical I/O trace.  These tests pin that invariant over the same
matrix as ``test_fastpath_golden.py``: engines x backends x fast-path knobs
x fault injection x checkpoint/kill-resume, for each non-memory plane.
"""

import pytest

from repro.core.checkpoint import SimulationAborted
from repro.emio.faults import FaultPlan, RetryPolicy
from repro.emio.trace import IOTrace

from .test_fastpath_golden import FAST, build, golden, make_listrank, make_sort

PLANES = ("file", "mmap")


class TestSequentialPlanes:
    @pytest.mark.parametrize("make", [make_sort, make_listrank])
    @pytest.mark.parametrize("plane", PLANES)
    def test_plane_equals_memory(self, make, plane):
        ref = golden(build(make, "sequential"))
        got = golden(build(make, "sequential", storage=plane))
        assert got == ref

    @pytest.mark.parametrize("plane", PLANES)
    def test_plane_with_fast_knobs(self, plane):
        ref = golden(build(make_sort, "sequential"))
        got = golden(build(make_sort, "sequential", storage=plane, **FAST))
        assert got == ref

    @pytest.mark.parametrize("plane", PLANES)
    def test_plane_with_checkpointing(self, plane):
        ref = golden(build(make_sort, "sequential", checkpoint=True))
        got = golden(build(make_sort, "sequential", checkpoint=True, storage=plane))
        assert got == ref

    @pytest.mark.parametrize("plane", PLANES)
    def test_trace_byte_identical(self, plane):
        """The physical operation stream itself is plane-independent."""
        sims, traces = [], []
        for kwargs in ({}, {"storage": plane}):
            sim = build(make_sort, "sequential", **kwargs)
            traces.append(IOTrace.attach(sim.array))
            sims.append(sim)
        assert golden(sims[1]) == golden(sims[0])
        ref_ops, got_ops = [
            [(op.kind, op.disks, op.tracks, op.retry) for op in t.ops] for t in traces
        ]
        assert got_ops == ref_ops
        assert traces[0].counts() == traces[1].counts()


class TestParallelPlanes:
    @pytest.mark.parametrize("make", [make_sort, make_listrank])
    @pytest.mark.parametrize("plane", PLANES)
    def test_plane_inline_equals_memory(self, make, plane):
        ref = golden(build(make, "parallel"))
        got = golden(build(make, "parallel", storage=plane))
        assert got == ref

    @pytest.mark.parametrize("plane", PLANES)
    def test_plane_over_process_backend(self, plane):
        """Each worker claims its own per-processor storage subdirectory;
        the counted run must still match the inline memory reference."""
        ref = golden(build(make_sort, "parallel"))
        got = golden(build(make_sort, "parallel", backend="process", storage=plane))
        assert got == ref

    def test_plane_process_fast_knobs_together(self):
        ref = golden(build(make_sort, "parallel"))
        got = golden(
            build(make_sort, "parallel", backend="process", storage="file", **FAST)
        )
        assert got == ref


class TestFaultsOnPlanes:
    @pytest.mark.parametrize("plane", PLANES)
    def test_transient_faults_identical(self, plane):
        """The fault stream is drawn per counted op, so injected faults and
        retries land identically on every plane."""
        def run(**kwargs):
            plan = FaultPlan(seed=1, read_error_rate=0.05, write_error_rate=0.05)
            return golden(
                build(
                    make_sort,
                    "sequential",
                    faults=plan,
                    retry=RetryPolicy(),
                    checkpoint=True,
                    **kwargs,
                )
            )

        assert run(storage=plane) == run()

    @pytest.mark.parametrize("plane", PLANES)
    def test_corruption_detected_on_plane(self, plane):
        """Checksummed corruption must stay observable through the file
        round-trip (images are re-pickled, not shared objects)."""
        def run(**kwargs):
            plan = FaultPlan(seed=3, corruption_rate=0.05)
            return golden(
                build(
                    make_sort,
                    "sequential",
                    faults=plan,
                    retry=RetryPolicy(),
                    checkpoint=True,
                    **kwargs,
                )
            )

        assert run(storage=plane) == run()

    @pytest.mark.parametrize("plane", PLANES)
    def test_kill_and_resume_onto_plane(self, plane):
        """A run killed on the memory plane resumes onto a file/mmap engine
        via the portable checkpoint blobs (different root: no re-attach)."""
        expected = golden(build(make_sort, "sequential"))["outputs"]
        plan = FaultPlan(seed=0, dead_disk=0, dead_after=40)
        dying = build(
            make_sort,
            "sequential",
            faults=plan,
            retry=RetryPolicy(max_retries=2),
            checkpoint=True,
            max_recoveries=0,
        )
        with pytest.raises(SimulationAborted) as exc_info:
            dying.run()
        ckpt = exc_info.value.checkpoint
        assert ckpt is not None

        fresh = build(make_sort, "sequential", checkpoint=True, storage=plane)
        outputs, report = fresh.resume_from_checkpoint(ckpt)
        assert outputs == expected
        assert report.faults.resumed_from_step == ckpt.step

    @pytest.mark.parametrize("plane", PLANES)
    def test_kill_on_plane_resume_on_memory(self, plane):
        """The reverse direction: checkpoints taken on a non-memory plane
        stay portable (the pickled state blobs are plane-independent)."""
        expected = golden(build(make_sort, "sequential"))["outputs"]
        plan = FaultPlan(seed=0, dead_disk=0, dead_after=40)
        dying = build(
            make_sort,
            "sequential",
            faults=plan,
            retry=RetryPolicy(max_retries=2),
            checkpoint=True,
            max_recoveries=0,
            storage=plane,
        )
        with pytest.raises(SimulationAborted) as exc_info:
            dying.run()
        ckpt = exc_info.value.checkpoint
        assert ckpt is not None

        fresh = build(make_sort, "sequential", checkpoint=True)
        outputs, report = fresh.resume_from_checkpoint(ckpt)
        assert outputs == expected
        assert report.faults.resumed_from_step == ckpt.step


class TestObservability:
    @pytest.mark.parametrize("plane", PLANES)
    def test_storage_byte_counters_flow(self, plane):
        """Non-memory planes report moved bytes; the memory plane stays 0."""
        sim = build(make_sort, "sequential", storage=plane)
        sim.run()
        assert sim.array.storage_read_bytes > 0
        assert sim.array.storage_write_bytes > 0

    def test_memory_plane_counters_zero(self):
        sim = build(make_sort, "sequential")
        sim.run()
        assert sim.array.storage_read_bytes == 0
        assert sim.array.storage_write_bytes == 0
