"""Unit tests for parameters (S1) and the cost model."""

import pytest

from repro.costs import CostLedger, SuperstepCost, packets_for
from repro.params import (
    BSPParams,
    MachineParams,
    ParameterError,
    SimulationParams,
    log_MB,
)


class TestMachineParams:
    def test_defaults_valid(self):
        m = MachineParams()
        assert m.p == 1 and m.M >= m.D * m.B

    def test_memory_must_hold_one_block_per_disk(self):
        with pytest.raises(ParameterError):
            MachineParams(M=16, D=4, B=8)

    @pytest.mark.parametrize("field,value", [("p", 0), ("D", 0), ("B", 0), ("b", 0)])
    def test_positive_fields(self, field, value):
        with pytest.raises(ParameterError):
            MachineParams(**{field: value})

    def test_negative_costs_rejected(self):
        with pytest.raises(ParameterError):
            MachineParams(G=-1)

    def test_io_bandwidth(self):
        assert MachineParams(D=4, B=16, M=128).io_bandwidth == 64

    def test_with_(self):
        m = MachineParams(D=2, B=16, M=1024)
        m2 = m.with_(D=4)
        assert m2.D == 4 and m2.B == 16 and m.D == 2

    def test_log_MB(self):
        assert log_MB(1024, 64) == 4.0
        assert log_MB(64, 64) == 1.0  # clamped
        with pytest.raises(ParameterError):
            log_MB(0, 4)


class TestSimulationParams:
    def bsp(self, v=16, mu=64, gamma=32):
        return BSPParams(v=v, mu=mu, gamma=gamma)

    def test_default_k_is_memory_bound(self):
        p = SimulationParams(machine=MachineParams(M=256, B=16), bsp=self.bsp(mu=64))
        assert p.k == 4  # floor(256/64), divides 16

    def test_default_k_clamped_to_vpp(self):
        p = SimulationParams(
            machine=MachineParams(M=1 << 20, B=16), bsp=self.bsp(v=8, mu=64)
        )
        assert p.k == 8

    def test_default_k_divides_vpp(self):
        p = SimulationParams(
            machine=MachineParams(M=64 * 5, B=16), bsp=self.bsp(v=16, mu=64)
        )
        assert 16 % p.k == 0 and p.k <= 5

    def test_explicit_k_validated(self):
        with pytest.raises(ParameterError):
            SimulationParams(
                machine=MachineParams(M=128, B=16), bsp=self.bsp(mu=64), k=3
            )  # 3 does not divide 16

    def test_group_must_fit_memory(self):
        with pytest.raises(ParameterError):
            SimulationParams(
                machine=MachineParams(M=128, B=16), bsp=self.bsp(mu=64), k=4
            )

    def test_context_too_big(self):
        with pytest.raises(ParameterError):
            SimulationParams(
                machine=MachineParams(M=128, B=16), bsp=self.bsp(mu=512)
            )

    def test_strict_slackness(self):
        machine = MachineParams(M=256, B=16, D=8)
        with pytest.raises(ParameterError):
            SimulationParams(
                machine=machine, bsp=self.bsp(v=16, mu=64), k=2, strict=True
            )

    def test_strict_accepts_valid(self):
        machine = MachineParams(M=1 << 12, B=16, b=16, D=2)
        bsp = BSPParams(v=1 << 10, mu=64, gamma=32)
        p = SimulationParams(machine=machine, bsp=bsp, k=4, strict=True)
        assert p.check_theorem1()

    def test_strict_requires_b_ge_B(self):
        machine = MachineParams(M=1 << 12, B=64, b=16, D=1)
        with pytest.raises(ParameterError):
            SimulationParams(
                machine=machine, bsp=BSPParams(v=1 << 10, mu=64, gamma=32),
                k=2, strict=True,
            )

    def test_derived_quantities(self):
        p = SimulationParams(
            machine=MachineParams(M=256, B=16, D=2, p=2),
            bsp=BSPParams(v=32, mu=64, gamma=40),
            k=4,
        )
        assert p.groups_per_processor == 4
        assert p.vps_per_processor == 16
        assert p.context_blocks_per_vp == 4
        assert p.message_blocks_per_vp == 3
        assert p.theoretical_io_ops_per_superstep() == 16 * 64 / 32


class TestCosts:
    def test_packets_for(self):
        assert packets_for(0, 8) == 0
        assert packets_for(1, 8) == 1
        assert packets_for(8, 8) == 1
        assert packets_for(9, 8) == 2

    def test_superstep_total(self):
        m = MachineParams(g=2.0, G=3.0, L=5.0, M=1024, B=16, b=4)
        c = SuperstepCost(comp_ops=10, comm_packets=4, io_ops=2)
        assert c.comm_time(m) == 8.0
        assert c.io_time(m) == 6.0
        assert c.total_time(m) == 10 + 8 + 6 + 5

    def test_comm_floor_L(self):
        m = MachineParams(g=0.1, L=5.0)
        c = SuperstepCost(comm_packets=1)
        assert c.comm_time(m) == 5.0

    def test_zero_comm_free(self):
        m = MachineParams(L=5.0)
        assert SuperstepCost().comm_time(m) == 0.0

    def test_syncs_multiply_L(self):
        m = MachineParams(L=5.0)
        c = SuperstepCost(syncs=3)
        assert c.total_time(m) == 15.0

    def test_ledger_accumulates(self):
        led = CostLedger(MachineParams())
        led.begin_superstep("a")
        led.charge_comp(5)
        led.charge_io(2)
        led.charge_comm_records(100)
        led.begin_superstep("b")
        led.charge_comp(7)
        led.close()
        assert led.num_supersteps == 2
        assert led.total_comp == 12
        assert led.total_io_ops == 2
        assert led.total_comm_packets == packets_for(100, MachineParams().b)

    def test_merge_max(self):
        m = MachineParams()
        a, b = CostLedger(m), CostLedger(m)
        for led, comp in ((a, 5), (b, 9)):
            led.begin_superstep()
            led.charge_comp(comp)
            led.close()
        a.merge_max(b)
        assert a.total_comp == 9

    def test_merge_mismatched_rejected(self):
        m = MachineParams()
        a, b = CostLedger(m), CostLedger(m)
        a.begin_superstep()
        a.close()
        with pytest.raises(ValueError):
            a.merge_max(b)

    def test_summary_keys(self):
        led = CostLedger(MachineParams())
        led.begin_superstep()
        led.close()
        s = led.summary()
        assert {"supersteps", "io_ops", "comm_packets", "total_time"} <= set(s)
