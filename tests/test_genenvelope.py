"""Tests for the generalized (crossing-segment) lower envelope."""

import random

import pytest

from repro.algorithms.geometry.genenvelope import (
    CGMGeneralLowerEnvelope,
    envelope_of_segments,
)
from repro.bsp.runner import run_reference
from repro.core.simulator import simulate
from repro.params import MachineParams

MACHINE = MachineParams(p=1, M=1 << 17, D=2, B=32, b=32)


def random_crossing_segments(n, seed, span=100.0):
    rng = random.Random(seed)
    segs = []
    for _ in range(n):
        x1 = rng.uniform(0, span * 0.8)
        x2 = x1 + rng.uniform(span * 0.05, span * 0.4)
        segs.append((x1, rng.uniform(0, span), x2, rng.uniform(0, span)))
    return segs


def check_envelope(segs, pieces):
    """Dense sampling oracle: within every piece the named segment is lowest."""

    def y_at(seg, x):
        x1, y1, x2, y2 = seg
        return y1 + (y2 - y1) * (x - x1) / (x2 - x1)

    rng = random.Random(1)
    # Pieces sorted, disjoint.
    for p, q in zip(pieces, pieces[1:]):
        assert p[1] <= q[0] + 1e-9
    for xa, xb, sid in pieces:
        assert xa < xb + 1e-12
        for _ in range(7):
            x = rng.uniform(xa + 1e-9, xb - 1e-9) if xb - xa > 2e-9 else (xa + xb) / 2
            active = [
                (y_at(s, x), i)
                for i, s in enumerate(segs)
                if s[0] <= x <= s[2]
            ]
            assert active
            best_y = min(a[0] for a in active)
            assert y_at(segs[sid], x) == pytest.approx(best_y, abs=1e-6)
    # Coverage: every x where a segment exists lies in some piece.
    for _ in range(50):
        x = rng.uniform(0, 100)
        exists = any(s[0] <= x <= s[2] for s in segs)
        covered = any(xa - 1e-9 <= x <= xb + 1e-9 for xa, xb, _ in pieces)
        assert covered == exists or not exists


class TestKernel:
    def test_two_crossing_segments(self):
        segs = [(0.0, 0.0, 10.0, 10.0), (0.0, 10.0, 10.0, 0.0)]
        pieces = envelope_of_segments(list(enumerate(segs)), segs)
        # Envelope: segment 0 before the crossing at x=5, segment 1 after.
        assert len(pieces) == 2
        assert pieces[0][2] == 0 and pieces[1][2] == 1
        assert pieces[0][1] == pytest.approx(5.0)

    def test_non_crossing_reduces_to_min(self):
        segs = [(0.0, 1.0, 10.0, 1.0), (2.0, 5.0, 8.0, 5.0)]
        pieces = envelope_of_segments(list(enumerate(segs)), segs)
        assert all(sid == 0 for _a, _b, sid in pieces)

    def test_partial_overlap(self):
        segs = [(0.0, 0.0, 4.0, 0.0), (3.0, -5.0, 8.0, -5.0)]
        pieces = envelope_of_segments(list(enumerate(segs)), segs)
        check_envelope(segs, pieces)

    @pytest.mark.parametrize("n,seed", [(5, 1), (20, 2), (60, 3)])
    def test_random_crossing(self, n, seed):
        segs = random_crossing_segments(n, seed)
        pieces = envelope_of_segments(list(enumerate(segs)), segs)
        check_envelope(segs, pieces)

    def test_clipping(self):
        segs = [(0.0, 0.0, 10.0, 10.0)]
        pieces = envelope_of_segments(list(enumerate(segs)), segs, lo=2.0, hi=7.0)
        assert len(pieces) == 1
        assert pieces[0][0] == pytest.approx(2.0)
        assert pieces[0][1] == pytest.approx(7.0)


class TestCGMGeneralLowerEnvelope:
    @pytest.mark.parametrize("n,v", [(12, 4), (40, 4), (30, 8)])
    def test_matches_oracle(self, n, v):
        segs = random_crossing_segments(n, seed=n + v)
        out, ledger = run_reference(CGMGeneralLowerEnvelope(segs, v), v)
        check_envelope(segs, out[0])
        assert ledger.num_supersteps == CGMGeneralLowerEnvelope.LAMBDA

    def test_rejects_vertical(self):
        with pytest.raises(ValueError):
            CGMGeneralLowerEnvelope([(1.0, 0.0, 1.0, 5.0)], 2)

    def test_em_sequential_matches(self):
        segs = random_crossing_segments(24, seed=9)
        out, report = simulate(CGMGeneralLowerEnvelope(segs, 4), MACHINE, v=4)
        check_envelope(segs, out[0])
        assert report.io_ops > 0

    def test_em_parallel_matches(self):
        segs = random_crossing_segments(24, seed=10)
        machine = MachineParams(p=2, M=1 << 17, D=2, B=32, b=32)
        ref, _ = run_reference(CGMGeneralLowerEnvelope(segs, 4), 4)
        out, _ = simulate(CGMGeneralLowerEnvelope(segs, 4), machine, v=4, k=2)
        assert out == ref
