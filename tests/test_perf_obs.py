"""Perf observatory tests: attribution profiler, live event bus, trend.

Three surfaces (DESIGN §11), three invariants:

* the :class:`CategoryProfiler` is an honest exclusive-time accountant —
  nested scopes carve time out of their parents and the totals never exceed
  the profiled wall-clock;
* profiling and event streaming are strictly read-only — the golden matrix
  proves counted costs, ledgers, and outputs are byte-identical with the
  observatory on or off, across engines × backends × storage planes;
* the disabled path (``NULL_OBSERVER``/``NULL_PROFILER``) costs ~nothing —
  the overhead guard hard-asserts counted identity and soft-checks wall.
"""

import json
import time
import warnings

import pytest

from repro.algorithms.sorting import CGMSampleSort
from repro.core.checkpoint import freeze
from repro.core.simulator import simulate
from repro.obs import (
    Collector,
    ProfileReport,
    RunEventLog,
    build_report,
    chrome_trace,
    read_events,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
    write_jsonl,
    read_jsonl,
)
from repro.obs import profile as profile_mod
from repro.obs.live import format_event, tail_events
from repro.obs.profile import (
    CATEGORIES,
    CategoryProfiler,
    NULL_PROFILER,
    validate_report_dict,
)
from repro.obs.trend import (
    append_history,
    compare_trend,
    host_fingerprint,
    load_history,
)
from repro.params import MachineParams
from repro.workloads import uniform_keys


# -- profiler unit tests ------------------------------------------------------------


@pytest.fixture
def clock(monkeypatch):
    """Deterministic profiler clock: tests advance ``clock.t`` explicitly."""

    class _Clock:
        t = 0.0

    monkeypatch.setattr(profile_mod, "_now", lambda: _Clock.t)
    return _Clock


class TestCategoryProfiler:
    def test_exclusive_time_nested_scopes(self, clock):
        prof = CategoryProfiler()
        prof.start()
        clock.t = 1.0
        prof.push("layout")
        clock.t = 2.0
        prof.push("serialize")  # carves out of layout from here on
        clock.t = 5.0
        prof.pop()  # serialize: 3.0
        clock.t = 6.0
        prof.pop()  # layout: (2-1) + (6-5) = 2.0
        clock.t = 7.0
        prof.stop()
        assert prof.totals == {"layout": 2.0, "serialize": 3.0}
        assert prof.wall == 7.0
        assert prof.attributed() == 5.0  # never exceeds wall

    def test_unbalanced_pop_is_ignored(self, clock):
        prof = CategoryProfiler()
        prof.start()
        prof.pop()  # nothing open: must not corrupt totals
        clock.t = 1.0
        prof.push("kernel")
        clock.t = 3.0
        prof.pop()
        prof.pop()  # extra pop after the stack drained
        assert prof.totals == {"kernel": 2.0}

    def test_stop_unwinds_abandoned_scopes(self, clock):
        """An exception can abandon open scopes; stop() closes them all."""
        prof = CategoryProfiler()
        prof.start()
        prof.push("layout")
        prof.push("serialize")
        clock.t = 4.0
        prof.stop()
        assert prof._stack == []
        assert prof.attributed() == pytest.approx(4.0)

    def test_scope_context_manager_pops_on_exception(self, clock):
        prof = CategoryProfiler()
        prof.start()
        with pytest.raises(RuntimeError):
            with prof.scope("checkpoint"):
                clock.t = 2.0
                raise RuntimeError("boom")
        assert prof._stack == []
        assert prof.totals["checkpoint"] == 2.0

    def test_snapshot_and_reset(self, clock):
        prof = CategoryProfiler()
        prof.start()
        prof.push("ipc")
        clock.t = 1.5
        prof.pop()
        snap = prof.snapshot()
        assert snap["totals"] == {"ipc": 1.5} and snap["counts"] == {"ipc": 1}
        prof.reset()
        assert prof.totals == {} and prof.steps == [] and prof.wall == 0.0

    def test_null_profiler_is_inert(self):
        NULL_PROFILER.push("kernel")
        NULL_PROFILER.pop()
        with NULL_PROFILER.scope("layout"):
            pass
        NULL_PROFILER.start()
        NULL_PROFILER.mark_superstep(0)
        NULL_PROFILER.stop()
        assert NULL_PROFILER.totals == {} and NULL_PROFILER.wall == 0.0
        assert not NULL_PROFILER.enabled


class TestProfileReport:
    def _report(self, clock):
        obs = Collector(profile=True)
        prof = obs.profile
        prof.start()
        clock.t = 1.0
        with prof.scope("kernel"):
            clock.t = 2.0
        prof.mark_superstep(0)
        clock.t = 3.0
        with prof.scope("routing"):
            clock.t = 5.0
        prof.mark_superstep(1)
        prof.stop()
        return build_report(obs, meta={"workload": "unit"})

    def test_superstep_deltas(self, clock):
        report = self._report(clock)
        assert [r["step"] for r in report.supersteps] == [0, 1]
        assert report.supersteps[0]["totals"] == {"kernel": 1.0}
        assert report.supersteps[1]["totals"] == {"routing": 2.0}

    def test_round_trip_and_render(self, clock):
        report = self._report(clock)
        clone = ProfileReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert clone.to_dict() == report.to_dict()
        text = report.render()
        assert "kernel" in text and "routing" in text and "(other)" in text

    def test_validate_rejections(self, clock):
        good = self._report(clock).to_dict()
        validate_report_dict(good)
        for mutate in (
            lambda d: d.pop("schema"),
            lambda d: d.__setitem__("schema", 99),
            lambda d: d.__setitem__("wall", "fast"),
            lambda d: d.__setitem__("tracks", {}),
            lambda d: d["tracks"]["engine"].pop("totals"),
            lambda d: d["tracks"]["engine"]["totals"].__setitem__("warp", 1.0),
            lambda d: d["supersteps"].append({"wall": 1.0}),
        ):
            bad = json.loads(json.dumps(good))
            mutate(bad)
            with pytest.raises(ValueError):
                validate_report_dict(bad)


# -- live event bus -----------------------------------------------------------------


class TestRunEventLog:
    def test_eta_requires_expected_steps_hint(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with RunEventLog(path, expected_steps=3) as log:
            log.run_started(workload="t")
            for step in range(3):
                log.superstep_started(step)
                log.superstep_finished(step, io_ops=7, bytes_moved=128)
            log.run_finished()
        done = [e for e in read_events(path, strict=True)
                if e["kind"] == "superstep_finished"]
        assert [e["steps_done"] for e in done] == [1, 2, 3]
        assert all(e["eta_s"] is not None for e in done)
        assert done[-1]["eta_s"] == 0.0  # nothing remaining
        assert all(e["io_ops"] == 7 and e["bytes_moved"] == 128 for e in done)

        nohint = tmp_path / "nohint.jsonl"
        with RunEventLog(nohint) as log:
            log.superstep_started(0)
            log.superstep_finished(0, io_ops=1, bytes_moved=1)
        (ev,) = [e for e in read_events(nohint)
                 if e["kind"] == "superstep_finished"]
        assert ev["eta_s"] is None  # the log does not guess step counts

    def test_partial_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with RunEventLog(path) as log:
            log.run_started()
        with open(path, "a") as fh:
            fh.write('{"schema":1,"kind":"superstep_st')  # writer mid-append
        events = read_events(path, strict=True)  # strict, yet no error
        assert [e["kind"] for e in events] == ["run_started"]

    def test_strict_rejects_corrupt_complete_lines(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        path.write_text('not json at all\n{"schema":1,"kind":"x"}\n')
        assert [e["kind"] for e in read_events(path)] == ["x"]  # lenient
        with pytest.raises(ValueError, match="not valid JSON"):
            read_events(path, strict=True)
        bad_schema = tmp_path / "schema.jsonl"
        bad_schema.write_text('{"schema":99,"kind":"x"}\n')
        with pytest.raises(ValueError, match="schema"):
            read_events(bad_schema, strict=True)

    def test_context_manager_records_error_status(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with pytest.raises(RuntimeError):
            with RunEventLog(path) as log:
                log.run_started()
                raise RuntimeError("boom")
        last = read_events(path, strict=True)[-1]
        assert last["kind"] == "run_finished" and last["status"] == "error"
        assert "boom" in last["error"]

    def test_tail_and_format(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with RunEventLog(path, expected_steps=1) as log:
            log.run_started(workload="sort")
            log.superstep_started(0)
            log.superstep_finished(0, io_ops=5, bytes_moved=64)
            log.run_finished()
        events = list(tail_events(path, follow=True, timeout=1.0))
        assert [e["kind"] for e in events] == [
            "run_started", "superstep_started", "superstep_finished",
            "run_finished",
        ]
        lines = [format_event(e) for e in events]
        assert "run started" in lines[0] and "workload=sort" in lines[0]
        assert "io_ops=5" in lines[2]
        assert "run finished" in lines[-1]


# -- trend tracking -----------------------------------------------------------------


def entry(host_id="h0", **results):
    return {
        "schema": 1,
        "t": 0.0,
        "host": {"id": host_id},
        "results": {k: v for k, v in results.items()},
    }


class TestTrend:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        e = append_history(
            path, {"sort": {"wall_s": 0.5, "io_ops": 100}}, t=123.0
        )
        assert e["host"]["id"] == host_fingerprint()["id"]
        (loaded,) = load_history(path)
        assert loaded["results"]["sort"] == {"wall_s": 0.5, "io_ops": 100}
        assert loaded["t"] == 123.0

    def test_load_is_lenient_strict_raises(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(path, {"k": {"wall_s": 1.0}}, t=0.0)
        with open(path, "a") as fh:
            fh.write("garbage line\n")
            fh.write('{"schema": 77, "results": {}}\n')
        assert len(load_history(path)) == 1  # bad lines skipped
        with pytest.raises(ValueError):
            load_history(path, strict=True)

    def test_verdicts(self):
        base = entry(sort={"wall_s": 1.0, "io_ops": 100})
        assert compare_trend([]).status == "insufficient"
        assert compare_trend([base]).status == "insufficient"
        ok = compare_trend(
            [base, base, entry(sort={"wall_s": 1.1, "io_ops": 100})]
        )
        assert ok.status == "ok" and ok.ok
        slow = compare_trend(
            [base, base, entry(sort={"wall_s": 9.0, "io_ops": 100})]
        )
        assert slow.status == "regressed"
        assert slow.regressions[0]["kind"] == "wall"
        drift = compare_trend(
            [base, entry(sort={"wall_s": 9.0, "io_ops": 101})]
        )
        assert drift.status == "counted_drift"  # hard even when wall also slow
        assert "counted drift" in drift.render()

    def test_other_hosts_are_ignored(self):
        laptop = entry("laptop", sort={"wall_s": 0.1, "io_ops": 100})
        ci = entry("ci", sort={"wall_s": 9.0, "io_ops": 100})
        # The slow CI run only compares against its own host's history.
        assert compare_trend([laptop, laptop, ci]).status == "insufficient"
        assert compare_trend([laptop, ci, ci]).status == "ok"

    def test_window_bounds_the_trajectory(self):
        old = entry(sort={"wall_s": 0.1, "io_ops": 100})
        recent = entry(sort={"wall_s": 1.0, "io_ops": 100})
        latest = entry(sort={"wall_s": 1.2, "io_ops": 100})
        history = [old] * 10 + [recent] * 8 + [latest]
        assert compare_trend(history, window=8).status == "ok"
        assert compare_trend(history, window=18).status == "regressed"


# -- golden byte-identity matrix ----------------------------------------------------


def run_golden(engine, backend, storage, observed, tmp_path):
    alg = CGMSampleSort(uniform_keys(384, seed=7), v=8)
    machine = MachineParams(
        p=1 if engine == "sequential" else 2, M=1 << 18, D=4, B=16, b=32
    )
    kw = {}
    obs = events = None
    if observed:
        obs = Collector(profile=True)
        events = RunEventLog(
            tmp_path / f"{engine}-{backend}-{storage}.jsonl",
            expected_steps=4,
        )
        kw = {"observer": obs, "events": events}
    outputs, report = simulate(
        alg, machine, v=8, engine=engine, backend=backend, storage=storage,
        **kw,
    )
    if events is not None:
        events.close()
    blob = freeze(
        {
            "outputs": outputs,
            "ledger": report.ledger.summary(),
            "supersteps": [
                (repr(s.phases), repr(s.routing), s.comm_packets)
                for s in report.supersteps
            ],
        }
    )
    return blob, obs, events


MATRIX = [
    ("sequential", "inline", "memory"),
    ("sequential", "inline", "file"),
    ("parallel", "inline", "memory"),
    ("parallel", "inline", "file"),
    ("parallel", "process", "memory"),
    ("parallel", "process", "file"),
]


class TestGoldenProfilingMatrix:
    @pytest.mark.parametrize("engine,backend,storage", MATRIX)
    def test_profiling_and_events_change_nothing(
        self, engine, backend, storage, tmp_path
    ):
        ref, _, _ = run_golden(engine, backend, storage, False, tmp_path)
        got, obs, events = run_golden(engine, backend, storage, True, tmp_path)
        assert got == ref  # byte-identical frozen blobs

        # The profile is real and schema-valid ...
        report = build_report(
            obs, meta={"engine": engine, "backend": backend}
        )
        validate_report_dict(report.to_dict())
        assert report.wall > 0 and report.track_totals()
        if backend == "process":
            assert any(t.startswith("p") for t in report.tracks)
        # ... and so is the event stream.
        stream = read_events(events.path, strict=True)
        kinds = [e["kind"] for e in stream]
        assert kinds[0] == "run_started" and kinds[-1] == "run_finished"
        assert stream[-1]["status"] == "ok"
        finished = [e for e in stream if e["kind"] == "superstep_finished"]
        assert finished and all(
            e["io_ops"] > 0 and e["bytes_moved"] >= 0 and e["eta_s"] is not None
            for e in finished
        )


class TestAttribution:
    def test_file_storage_sort_is_mostly_attributed(self):
        """The acceptance bar: a file-plane sort names >=90% of its wall."""
        alg = CGMSampleSort(uniform_keys(4096, seed=7), v=8)
        machine = MachineParams(p=1, M=1 << 18, D=4, B=64, b=64)
        obs = Collector(profile=True)
        simulate(alg, machine, v=8, storage="file", observer=obs)
        report = build_report(obs)
        assert report.attributed_fraction() >= 0.90
        # Storage-plane work is visible as its own categories.
        totals = report.track_totals()
        assert totals.get("syscall_io", 0) > 0
        assert totals.get("serialize", 0) > 0
        assert set(totals) <= set(CATEGORIES)


class TestOverheadGuard:
    def test_null_observer_counted_identity_and_wall_budget(self, tmp_path):
        """S2: instrumentation must not move a counted cost; wall is soft."""
        ref, _, _ = run_golden("sequential", "inline", "memory", False, tmp_path)
        got, _, _ = run_golden("sequential", "inline", "memory", True, tmp_path)
        assert got == ref  # hard: counted identity

        def wall(observed):
            best = float("inf")
            for _ in range(3):
                alg = CGMSampleSort(uniform_keys(2048, seed=7), v=8)
                machine = MachineParams(p=1, M=1 << 18, D=4, B=32, b=32)
                kw = {"observer": Collector(profile=True)} if observed else {}
                t0 = time.perf_counter()
                simulate(alg, machine, v=8, **kw)
                best = min(best, time.perf_counter() - t0)
            return best

        base, inst = wall(False), wall(True)
        overhead = inst / base - 1.0
        # Soft 5% budget: warn, don't flake CI on scheduler noise.  The hard
        # backstop only trips when instrumentation costs more than the run.
        if overhead > 0.05:
            warnings.warn(
                f"observer overhead {overhead:+.1%} exceeds the 5% budget "
                f"(instrumented {inst:.3f}s vs {base:.3f}s)"
            )
        assert overhead < 1.0


# -- exporter edge cases (S3) -------------------------------------------------------


class TestExportEdgeCases:
    def test_corrupt_jsonl_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(Collector(), str(path))
        with open(path, "a") as fh:
            fh.write("{{{ not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            read_jsonl(str(path))

    def test_truncated_jsonl_rejected(self, tmp_path):
        obs = Collector()
        with obs.span("a"):
            pass
        path = tmp_path / "t.jsonl"
        write_jsonl(obs, str(path))
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop the span line
        with pytest.raises(ValueError, match="truncated"):
            read_jsonl(str(path))

    def test_empty_collector_trace_validates(self, tmp_path):
        path = tmp_path / "empty.json"
        n = write_chrome_trace(Collector(), str(path))
        assert validate_trace_file(str(path)) == n

    def test_open_span_closed_on_exception(self, tmp_path):
        obs = Collector()
        with pytest.raises(RuntimeError):
            with obs.span("outer", cat="layout"):
                raise RuntimeError("crash mid-span")
        # The collector's exit hook closed it; simulate a harder crash too:
        obs.spans[0].t1 = None  # as if the process died inside the span
        trace = chrome_trace(obs)
        validate_chrome_trace(trace)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert xs and all(e["dur"] >= 0 for e in xs)

    def test_category_tagged_trace_round_trip(self, tmp_path):
        obs = Collector(profile=True)
        with obs.span("superstep", cat="layout"):
            with obs.span("compute", cat="kernel"):
                pass
        with obs.span("untagged"):
            pass
        jsonl = tmp_path / "t.jsonl"
        write_jsonl(obs, str(jsonl))
        spans = read_jsonl(str(jsonl))["spans"]
        assert {s.get("cat") for s in spans} == {"layout", "kernel", None}

        trace_path = tmp_path / "trace.json"
        write_chrome_trace(obs, str(trace_path))
        assert validate_trace_file(str(trace_path)) > 0
        with open(trace_path) as fh:
            xs = [e for e in json.load(fh)["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in xs}
        assert by_name["compute"]["cat"] == "kernel"
        assert "cname" in by_name["compute"]  # category-colored for Perfetto
        assert by_name["untagged"]["cat"] == "span"
        assert "cname" not in by_name["untagged"]
