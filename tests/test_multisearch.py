"""Tests for CGM multisearch and the direct EM batched-search baseline."""

import bisect
import random

import pytest

from repro import workloads
from repro.algorithms import CGMMultisearch
from repro.baselines import EMBatchedSearch
from repro.bsp.runner import run_reference
from repro.core.simulator import simulate
from repro.params import MachineParams

MACHINE = MachineParams(p=1, M=1 << 14, D=4, B=32, b=32)


def oracle(keys, queries):
    return [bisect.bisect_right(keys, q) - 1 for q in queries]


def collect(outputs):
    got = {}
    for part in outputs:
        got.update(dict(part))
    return got


class TestCGMMultisearch:
    @pytest.mark.parametrize("n,m,v", [(16, 8, 4), (200, 60, 4), (128, 128, 8)])
    def test_matches_oracle(self, n, m, v):
        keys = sorted(workloads.uniform_keys(n, seed=n, hi=10 * n))
        queries = workloads.uniform_keys(m, seed=m + 1, hi=11 * n)
        out, _ = run_reference(CGMMultisearch(keys, queries, v), v)
        got = collect(out)
        want = oracle(keys, queries)
        assert [got[i] for i in range(m)] == want

    def test_queries_below_all_keys(self):
        keys = [10, 20, 30, 40]
        out, _ = run_reference(CGMMultisearch(keys, [1, 5, 9], 2), 2)
        got = collect(out)
        assert [got[i] for i in range(3)] == [-1, -1, -1]

    def test_queries_at_and_above_keys(self):
        keys = [10, 20, 30, 40]
        out, _ = run_reference(CGMMultisearch(keys, [10, 40, 99], 2), 2)
        got = collect(out)
        assert [got[i] for i in range(3)] == [0, 3, 3]

    def test_duplicate_keys(self):
        keys = [5, 5, 5, 7, 7, 9]
        out, _ = run_reference(CGMMultisearch(keys, [5, 6, 7, 9], 2), 2)
        got = collect(out)
        assert [got[i] for i in range(4)] == [2, 2, 4, 5]

    def test_rejects_unsorted_keys(self):
        with pytest.raises(ValueError):
            CGMMultisearch([3, 1, 2], [1], 2)

    def test_lambda_is_log_n(self):
        n = 1024
        keys = list(range(n))
        queries = [3, 700, 1023]
        _, ledger = run_reference(CGMMultisearch(keys, queries, 4), 4)
        # Theta(log n) supersteps — the sublinear regime of Section 7.
        assert n.bit_length() - 2 <= ledger.num_supersteps <= n.bit_length() + 3

    def test_em_sequential_matches(self):
        keys = sorted(workloads.uniform_keys(100, seed=4, hi=1000))
        queries = workloads.uniform_keys(40, seed=5, hi=1100)
        out, report = simulate(CGMMultisearch(keys, queries, 4), MACHINE, v=4)
        got = collect(out)
        assert [got[i] for i in range(40)] == oracle(keys, queries)
        assert report.io_ops > 0

    def test_em_parallel_matches(self):
        keys = sorted(workloads.uniform_keys(64, seed=6, hi=1000))
        queries = workloads.uniform_keys(24, seed=7, hi=1100)
        machine = MachineParams(p=2, M=1 << 14, D=2, B=32, b=32)
        out, _ = simulate(CGMMultisearch(keys, queries, 4), machine, v=4, k=2)
        got = collect(out)
        assert [got[i] for i in range(24)] == oracle(keys, queries)


class TestEMBatchedSearch:
    @pytest.mark.parametrize("n,m", [(16, 8), (300, 100), (64, 200)])
    def test_matches_oracle(self, n, m):
        keys = sorted(workloads.uniform_keys(n, seed=n * 3, hi=10 * n))
        queries = workloads.uniform_keys(m, seed=m * 5, hi=11 * n)
        ans, stats = EMBatchedSearch(MACHINE).search(keys, queries)
        assert ans == oracle(keys, queries)
        assert stats.io_ops > 0

    def test_empty_queries(self):
        ans, _ = EMBatchedSearch(MACHINE).search([1, 2, 3], [])
        assert ans == []

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            EMBatchedSearch(MACHINE).search([2, 1], [1])

    def test_single_scan_io(self):
        """The baseline's key-scan I/O is one pass: <= ~n/(DB) + sort(m)."""
        n, m = 4096, 64
        keys = list(range(n))
        queries = list(range(0, n, n // m))[:m]
        _, stats = EMBatchedSearch(MACHINE).search(keys, queries)
        one_scan = n / (MACHINE.D * MACHINE.B)
        assert stats.io_ops <= 4 * one_scan + 64
