"""Edge-case tests for Algorithm 3's batch/bucket geometry.

The parallel engine partitions v virtual processors into p x (v/pk)
(processor x batch) cells and maps batches into D disk buckets; these tests
pin the corner configurations: one batch, fewer batches than disks, group
size equal to the whole per-processor share, single-vp batches.
"""

import pytest

from repro.bsp.runner import run_reference
from repro.core.parsim import ParallelEMSimulation
from repro.core.simulator import build_params
from repro.params import MachineParams

from .helpers import AllToAllExchange, MultiRoundAccumulate, TotalExchangeSum


def run_par(alg_factory, v, p, k, D=4, B=16, seed=3):
    alg = alg_factory()
    machine = MachineParams(
        p=p, M=max(k * alg.context_size(), D * B), D=D, B=B, b=B
    )
    params = build_params(alg_factory(), machine, v=v, k=k)
    return ParallelEMSimulation(alg_factory(), params, seed=seed).run()


class TestBatchGeometry:
    def test_single_batch(self):
        """k = v/p: one batch per compound superstep (nbatches = 1 < D)."""
        v, p, k = 8, 2, 4
        ref, _ = run_reference(AllToAllExchange(), v)
        out, report = run_par(AllToAllExchange, v, p, k)
        assert out == ref
        for s in report.ledger.supersteps:
            assert s.syncs >= 2  # one round still has its barriers

    def test_fewer_batches_than_disks(self):
        """nbatches = 2 with D = 8: most disk buckets stay empty."""
        v, p, k = 8, 2, 2
        ref, _ = run_reference(TotalExchangeSum(), v)
        out, _ = run_par(TotalExchangeSum, v, p, k, D=8)
        assert out == ref

    def test_single_vp_batches(self):
        """k = 1: the Sibeyn–Kaufmann regime inside Algorithm 3."""
        v, p = 8, 2
        ref, _ = run_reference(MultiRoundAccumulate(rounds=2), v)
        out, _ = run_par(lambda: MultiRoundAccumulate(rounds=2), v, p, 1)
        assert out == ref

    def test_p_equals_v(self):
        """One virtual processor per real processor (no multiplexing)."""
        v = p = 4
        ref, _ = run_reference(AllToAllExchange(), v)
        out, _ = run_par(AllToAllExchange, v, p, 1)
        assert out == ref

    def test_single_disk_multiprocessor(self):
        v, p, k = 8, 4, 2
        ref, _ = run_reference(TotalExchangeSum(), v)
        out, _ = run_par(TotalExchangeSum, v, p, k, D=1)
        assert out == ref

    def test_batch_maps(self):
        alg = AllToAllExchange()
        machine = MachineParams(p=2, M=4 * alg.context_size(), D=4, B=16, b=16)
        params = build_params(alg, machine, v=16, k=2)
        sim = ParallelEMSimulation(alg, params)
        # vp layout: processor = vp // 8, batch = (vp % 8) // 2.
        assert [sim.owner_of_vp(vp) for vp in (0, 7, 8, 15)] == [0, 0, 1, 1]
        assert [sim.batch_of_vp(vp) for vp in (0, 1, 2, 7, 9, 14)] == [
            0, 0, 1, 3, 0, 3,
        ]
        # Buckets partition the 4 batches over 4 disks evenly.
        buckets = {sim.bucket_of_vp(vp) for vp in range(16)}
        assert buckets == {0, 1, 2, 3}
        # Contiguity requirement of SimulateRouting: bucket is monotone
        # non-decreasing in the batch index.
        seq = [sim.bucket_of_vp(b * sim.k) for b in range(sim.nbatches)]
        assert seq == sorted(seq)

    def test_init_and_output_io_accounted(self):
        v, p, k = 8, 2, 2
        _, report = run_par(MultiRoundAccumulate, v, p, k)
        assert report.init_io_ops > 0
        assert report.output_io_ops > 0
        assert report.disk_space_tracks > 0

    @pytest.mark.parametrize("seed", range(3))
    def test_scatter_randomness_does_not_affect_costs_structure(self, seed):
        v, p, k = 8, 2, 2
        _, report = run_par(AllToAllExchange, v, p, k, seed=seed)
        # Superstep count is seed-independent (control flow is deterministic).
        assert report.num_supersteps == 2
