"""Unit tests for disk layouts (S3): consecutive/striped regions, allocator."""

import pytest

from repro.emio.disk import Block, DiskError
from repro.emio.diskarray import DiskArray
from repro.emio.layout import (
    ConsecutiveRegion,
    RegionAllocator,
    StripedRegion,
    blocks_needed,
    blocks_to_object,
    pack_records,
    pickle_to_blocks,
    unpack_records,
)


class TestHelpers:
    def test_blocks_needed(self):
        assert blocks_needed(0, 8) == 0
        assert blocks_needed(1, 8) == 1
        assert blocks_needed(8, 8) == 1
        assert blocks_needed(9, 8) == 2

    def test_pack_unpack_roundtrip(self):
        records = list(range(23))
        blocks = pack_records(records, B=8, dest=5)
        assert len(blocks) == 3
        assert all(b.dest == 5 for b in blocks)
        assert unpack_records(blocks) == records

    def test_unpack_reorders_by_seq(self):
        blocks = pack_records(list(range(16)), B=4)
        assert unpack_records(reversed(blocks)) == list(range(16))

    def test_unpack_skips_dummies_and_gaps(self):
        blocks = pack_records([1, 2], B=4)
        blocks.append(Block(records=[99], dummy=True, seq=9))
        assert unpack_records(blocks + [None]) == [1, 2]

    def test_pickle_roundtrip(self):
        obj = {"a": [1, 2, 3], "b": ("x", 4.5)}
        blocks = pickle_to_blocks(obj, B=4)
        assert blocks_to_object(blocks) == obj

    def test_pickle_respects_mu(self):
        with pytest.raises(DiskError):
            pickle_to_blocks(list(range(10000)), B=4, max_records=4)

    def test_pickle_unordered_blocks(self):
        obj = list(range(500))
        blocks = pickle_to_blocks(obj, B=2)
        assert len(blocks) > 2
        assert blocks_to_object(list(reversed(blocks))) == obj


class TestRegionAllocator:
    def test_sequential_allocation(self):
        alloc = RegionAllocator(DiskArray(2, 8))
        assert alloc.allocate(4) == 0
        assert alloc.allocate(2) == 4
        assert alloc.high_water == 6

    def test_release_and_reuse(self):
        alloc = RegionAllocator(DiskArray(2, 8))
        a = alloc.allocate(4)
        b = alloc.allocate(4)
        alloc.release(a, 4)
        c = alloc.allocate(4)
        assert c == a  # reused
        assert alloc.high_water == 8

    def test_tail_release_shrinks(self):
        alloc = RegionAllocator(DiskArray(1, 8))
        a = alloc.allocate(4)
        b = alloc.allocate(4)
        alloc.release(b, 4)
        assert alloc.high_water == 4
        alloc.release(a, 4)
        assert alloc.high_water == 0

    def test_release_clears_tracks(self):
        array = DiskArray(1, 8)
        alloc = RegionAllocator(array)
        base = alloc.allocate(2)
        array.disks[0].write_track(base, Block(records=[1]))
        alloc.release(base, 2)
        assert array.disks[0].peek(base) is None

    def test_bounded_space_under_alternation(self):
        # Alternating alloc/release of same-size regions must not grow.
        alloc = RegionAllocator(DiskArray(2, 8))
        keep = alloc.allocate(10)
        for _ in range(50):
            a = alloc.allocate(7)
            b = alloc.allocate(3)
            alloc.release(a, 7)
            alloc.release(b, 3)
        assert alloc.high_water <= 10 + 10 + 7 + 3


class TestStripedRegion:
    def test_definition2_invariant(self):
        array = DiskArray(3, 8)
        region = StripedRegion(array, RegionAllocator(array), [2, 5, 0, 3], "t")
        region.check_standard_consecutive()

    def test_consecutive_region_matches_paper_striping(self):
        # Block i of item j on disk (i + j*bpi) mod D.
        array = DiskArray(4, 8)
        region = ConsecutiveRegion(array, RegionAllocator(array), 5, 3, "ctx")
        for j in range(5):
            for i in range(3):
                d, t = region.addr(j, i)
                assert d == (i + j * 3) % 4
                assert t == (i + j * 3) // 4

    def test_slot_roundtrip(self):
        array = DiskArray(3, 4)
        region = StripedRegion(array, RegionAllocator(array), [2, 3], "m")
        blocks = [Block(records=[1, 2]), Block(records=[3])]
        region.write_slot(0, blocks)
        got = region.read_slot(0)
        assert [b.records for b in got if b] == [[1, 2], [3]]

    def test_group_read_is_fully_parallel(self):
        # Reading consecutive slots uses ceil(total/D) parallel ops.
        array = DiskArray(4, 4)
        region = ConsecutiveRegion(array, RegionAllocator(array), 8, 2, "c")
        for j in range(8):
            region.write_item(j, [Block(records=[j]), Block(records=[j])])
        array.reset_stats()
        region.read_items([2, 3, 4, 5])  # 8 blocks over 4 disks
        assert array.parallel_ops == 2

    def test_overfull_slot_rejected(self):
        array = DiskArray(2, 4)
        region = StripedRegion(array, RegionAllocator(array), [1], "m")
        with pytest.raises(DiskError):
            region.write_slot(0, [Block(records=[]), Block(records=[])])

    def test_out_of_range_rejected(self):
        array = DiskArray(2, 4)
        region = StripedRegion(array, RegionAllocator(array), [1, 1], "m")
        with pytest.raises(DiskError):
            region.addr(2, 0)
        with pytest.raises(DiskError):
            region.addr(0, 1)

    def test_use_after_free_rejected(self):
        array = DiskArray(2, 4)
        region = StripedRegion(array, RegionAllocator(array), [1], "m")
        region.free()
        with pytest.raises(DiskError):
            region.read_slot(0)

    def test_empty_region(self):
        array = DiskArray(2, 4)
        region = StripedRegion(array, RegionAllocator(array), [], "empty")
        assert region.tracks_per_disk == 0
        region.check_standard_consecutive()
