"""Unit tests for the linked bucket store (S3) and SimulateRouting (S5)."""

import random

import pytest

from repro.emio.disk import Block
from repro.emio.diskarray import DiskArray
from repro.emio.layout import RegionAllocator
from repro.emio.linked import LinkedBuckets
from repro.core.routing import simulate_routing


def make_store(D=4, B=8, v=16, seed=0, schedule="random"):
    array = DiskArray(D, B)
    alloc = RegionAllocator(array)
    store = LinkedBuckets(
        array,
        alloc,
        nbuckets=D,
        bucket_of=lambda dest: dest * D // v,
        rng=random.Random(seed),
        schedule=schedule,
    )
    return array, alloc, store


def blocks_for(dests, B=8):
    return [Block(records=[d], dest=d, src=0, msg=d, seq=0) for d in dests]


class TestLinkedBuckets:
    def test_append_counts_cycles(self):
        array, _, store = make_store(D=4)
        ops = store.append_blocks(blocks_for(range(10)))
        assert ops == 3  # ceil(10/4)
        assert store.total_blocks == 10

    def test_bucket_assignment(self):
        _, _, store = make_store(D=4, v=16)
        store.append_blocks(blocks_for(range(16)))
        for b in range(4):
            assert store.bucket_size(b) == 4

    def test_each_cycle_hits_distinct_disks(self):
        array, _, store = make_store(D=4)
        store.append_blocks(blocks_for(range(4)))
        # One cycle: every disk got exactly one block.
        assert [d.writes for d in array.disks] == [1, 1, 1, 1]

    def test_rotate_mode_deterministic(self):
        _, _, s1 = make_store(D=4, seed=1, schedule="rotate")
        _, _, s2 = make_store(D=4, seed=2, schedule="rotate")
        s1.append_blocks(blocks_for(range(12)))
        s2.append_blocks(blocks_for(range(12)))
        assert s1.table == s2.table

    def test_max_load_ratio_reasonable(self):
        _, _, store = make_store(D=4, v=16, seed=3)
        store.append_blocks(blocks_for(list(range(16)) * 25))  # 400 blocks
        assert 1.0 <= store.max_load_ratio() <= 2.5  # Lemma 2: near-even whp

    def test_free_returns_space(self):
        array, alloc, store = make_store(D=2)
        store.append_blocks(blocks_for([i % 16 for i in range(40)]))
        hw = alloc.high_water
        store.free()
        assert alloc.high_water < hw or alloc.high_water == 0


class TestSimulateRouting:
    @pytest.mark.parametrize("D", [1, 2, 4, 8])
    @pytest.mark.parametrize("nblocks", [0, 1, 7, 64, 200])
    def test_all_blocks_delivered(self, D, nblocks):
        v = 16
        array, alloc, store = make_store(D=D, v=v, seed=D + nblocks)
        dests = [(i * 7) % v for i in range(nblocks)]
        store.append_blocks(blocks_for(dests))
        region, stats = simulate_routing(
            array, alloc, store, nslots=v, slot_of=lambda d: d
        )
        assert stats.total_blocks == nblocks
        # Every block landed in its destination slot.
        for slot in range(v):
            want = sorted(d for d in dests if d == slot)
            got = sorted(
                b.dest for b in region.read_slot(slot) if b is not None
            )
            assert got == want

    def test_region_is_standard_consecutive(self):
        v = 8
        array, alloc, store = make_store(D=4, v=v, seed=5)
        store.append_blocks(blocks_for([i % v for i in range(50)]))
        region, _ = simulate_routing(array, alloc, store, v, lambda d: d)
        region.check_standard_consecutive()

    def test_io_ops_linear_in_blocks(self):
        v, D = 16, 4
        ops = {}
        for nblocks in (100, 400):
            array, alloc, store = make_store(D=D, v=v, seed=nblocks)
            store.append_blocks(blocks_for([i % v for i in range(nblocks)]))
            _, stats = simulate_routing(array, alloc, store, v, lambda d: d)
            ops[nblocks] = stats.io_ops
        # 4x blocks -> ~4x ops (within the Lemma 2 constant).
        assert 2.5 <= ops[400] / ops[100] <= 6

    def test_io_ops_scale_down_with_D(self):
        v, nblocks = 16, 256
        ops = {}
        for D in (1, 4):
            array, alloc, store = make_store(D=D, v=v, seed=7)
            store.append_blocks(blocks_for([i % v for i in range(nblocks)]))
            _, stats = simulate_routing(array, alloc, store, v, lambda d: d)
            ops[D] = stats.io_ops
        assert ops[4] < ops[1] / 2  # parallel disks pay off

    def test_batched_slot_mapping(self):
        # Parallel engine use-case: many vps share one batch slot.
        v, nslots = 16, 4
        array, alloc, store = make_store(D=2, v=v, seed=9)
        dests = [i % v for i in range(40)]
        store.append_blocks(blocks_for(dests))
        region, _ = simulate_routing(
            array, alloc, store, nslots, slot_of=lambda d: d * nslots // v
        )
        for slot in range(nslots):
            want = sorted(d for d in dests if d * nslots // v == slot)
            got = sorted(b.dest for b in region.read_slot(slot) if b is not None)
            assert got == want

    def test_copy_region_released(self):
        v = 8
        array, alloc, store = make_store(D=2, v=v, seed=11)
        store.append_blocks(blocks_for([i % v for i in range(30)]))
        region, _ = simulate_routing(array, alloc, store, v, lambda d: d)
        store.free()
        # Only the new incoming region (and bucket-chunk leftovers) remain.
        assert alloc.high_water <= region.tracks_per_disk + 64

    def test_phase2_cost_tight(self):
        """Phase 2 costs one read + one write op per round: <= 2(R_max + D)."""
        v, D = 32, 8
        array, alloc, store = make_store(D=D, v=v, seed=13)
        store.append_blocks(blocks_for([i % v for i in range(512)]))
        _, stats = simulate_routing(array, alloc, store, v, lambda d: d)
        r_max = 512 // D + D  # balanced buckets whp
        assert stats.phase2_ops <= 2 * (2 * r_max + D)
