"""Shared test configuration.

Registers a ``ci`` hypothesis profile — derandomized, no deadline — so the
property suites behave identically on every CI run (derandomization makes
each ``@given`` derive its examples from the test name instead of a random
seed; the deadline is dropped because shared runners have noisy clocks).
Select it with ``HYPOTHESIS_PROFILE=ci``; the workflow sets that and pins
``--hypothesis-seed=0`` for the parts derandomization does not cover.
"""

import os

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis-free environments
    settings = None

if settings is not None:
    settings.register_profile("ci", derandomize=True, deadline=None)
    profile = os.environ.get("HYPOTHESIS_PROFILE")
    if profile:
        settings.load_profile(profile)
