"""Tests for the extended Group C rows: RMQ, batched LCA, expression trees."""

import random

import pytest

from repro import workloads
from repro.algorithms.graphs import (
    CGMBatchedRMQ,
    CGMExpressionEval,
    batched_lca,
)
from repro.bsp.runner import run_reference
from repro.core.simulator import simulate
from repro.params import MachineParams

MACHINE = MachineParams(p=1, M=1 << 16, D=2, B=32, b=32)


def collect(outputs):
    got = {}
    for part in outputs:
        got.update(dict(part))
    return got


class TestBatchedRMQ:
    @pytest.mark.parametrize("n,q,v", [(16, 8, 4), (100, 40, 4), (64, 64, 8)])
    def test_matches_oracle(self, n, q, v):
        rng = random.Random(n * 31 + q)
        values = [rng.randrange(1000) for _ in range(n)]
        queries = []
        for _ in range(q):
            lo = rng.randrange(n)
            hi = rng.randrange(lo, n)
            queries.append((lo, hi))
        out, _ = run_reference(CGMBatchedRMQ(values, queries, v), v)
        got = collect(out)
        for qi, (lo, hi) in enumerate(queries):
            want = min(range(lo, hi + 1), key=lambda i: (values[i], i))
            assert got[qi] == want

    def test_single_element_ranges(self):
        values = list(range(20, 0, -1))
        queries = [(i, i) for i in range(20)]
        out, _ = run_reference(CGMBatchedRMQ(values, queries, 4), 4)
        got = collect(out)
        assert got == {i: i for i in range(20)}

    def test_full_range(self):
        values = [5, 3, 8, 3, 9, 1, 7, 2]
        out, _ = run_reference(CGMBatchedRMQ(values, [(0, 7)], 4), 4)
        assert collect(out) == {0: 5}

    def test_ties_resolve_to_smallest_position(self):
        values = [2, 1, 1, 1, 2, 2, 2, 2]
        out, _ = run_reference(CGMBatchedRMQ(values, [(0, 7), (2, 7)], 4), 4)
        got = collect(out)
        assert got[0] == 1 and got[1] == 2

    def test_within_one_segment(self):
        values = list(range(32))
        out, _ = run_reference(CGMBatchedRMQ(values, [(1, 3), (9, 10)], 4), 4)
        got = collect(out)
        assert got == {0: 1, 1: 9}

    def test_rejects_bad_query(self):
        with pytest.raises(ValueError):
            CGMBatchedRMQ([1, 2], [(0, 5)], 2)

    def test_constant_supersteps(self):
        rng = random.Random(1)
        values = [rng.random() for _ in range(64)]
        _, ledger = run_reference(
            CGMBatchedRMQ(values, [(0, 63), (5, 20)], 4), 4
        )
        assert ledger.num_supersteps == 5

    def test_em_sequential_matches(self):
        rng = random.Random(9)
        values = [rng.randrange(100) for _ in range(64)]
        queries = [(rng.randrange(32), 32 + rng.randrange(32)) for _ in range(16)]
        out, _ = simulate(CGMBatchedRMQ(values, queries, 4), MACHINE, v=4)
        got = collect(out)
        for qi, (lo, hi) in enumerate(queries):
            want = min(range(lo, hi + 1), key=lambda i: (values[i], i))
            assert got[qi] == want


def brute_lca(edges, root, u, v_):
    parent = {c: p for p, c in edges}

    def ancestors(x):
        chain = [x]
        while x in parent:
            x = parent[x]
            chain.append(x)
        return chain

    au = ancestors(u)
    av = set(ancestors(v_))
    for x in au:
        if x in av:
            return x
    raise AssertionError("no common ancestor")  # pragma: no cover


class TestBatchedLCA:
    @pytest.mark.parametrize("n,v", [(8, 4), (30, 4), (64, 8)])
    def test_matches_oracle(self, n, v):
        edges = workloads.random_tree_edges(n, seed=n + 5)
        rng = random.Random(n)
        queries = [(rng.randrange(n), rng.randrange(n)) for _ in range(2 * n)]
        answers = batched_lca(edges, 0, queries, v)
        for (a, b), got in zip(queries, answers):
            assert got == brute_lca(edges, 0, a, b)

    def test_self_queries(self):
        edges = workloads.random_tree_edges(16, seed=3)
        answers = batched_lca(edges, 0, [(i, i) for i in range(16)], 4)
        assert answers == list(range(16))

    def test_ancestor_queries(self):
        # Path tree: LCA(a, b) = min(a, b).
        n = 16
        edges = [(i, i + 1) for i in range(n - 1)]
        rng = random.Random(0)
        queries = [(rng.randrange(n), rng.randrange(n)) for _ in range(20)]
        answers = batched_lca(edges, 0, queries, 4)
        assert answers == [min(a, b) for a, b in queries]

    def test_star_tree(self):
        n = 17
        edges = [(0, i) for i in range(1, n)]
        answers = batched_lca(edges, 0, [(1, 2), (5, 5), (0, 9)], 4)
        assert answers == [0, 5, 0]

    def test_single_node(self):
        assert batched_lca([], 0, [(0, 0)], 2) == [0]

    def test_through_em_engine(self):
        n, v = 24, 4
        edges = workloads.random_tree_edges(n, seed=8)
        rng = random.Random(2)
        queries = [(rng.randrange(n), rng.randrange(n)) for _ in range(12)]
        run = lambda alg, vv: simulate(alg, MACHINE, v=vv, seed=1)[0]
        answers = batched_lca(edges, 0, queries, v, run=run)
        for (a, b), got in zip(queries, answers):
            assert got == brute_lca(edges, 0, a, b)


def brute_eval(edges, ops, leaf_values, root=0):
    children = {}
    for p, c in edges:
        children.setdefault(p, []).append(c)

    def rec(node):
        if node in leaf_values:
            return leaf_values[node]
        vals = [rec(c) for c in children[node]]
        out = vals[0]
        for x in vals[1:]:
            out = out + x if ops[node] == "+" else out * x
        return out

    return rec(root)


class TestExpressionEval:
    @pytest.mark.parametrize("nleaves,v", [(2, 2), (8, 4), (40, 4), (64, 8)])
    def test_matches_oracle(self, nleaves, v):
        edges, ops, leaves = workloads.random_expression_tree(nleaves, seed=nleaves)
        want = brute_eval(edges, ops, leaves)
        out, _ = run_reference(CGMExpressionEval(edges, ops, leaves, v), v)
        assert all(o == [want] for o in out)

    def test_single_leaf(self):
        out, _ = run_reference(CGMExpressionEval([], {}, {0: 42}, 2), 2)
        assert out[0] == [42]

    def test_pure_sum_tree(self):
        # Balanced all-+ tree: value = sum of leaves.
        edges, ops, leaves = workloads.random_expression_tree(16, seed=2)
        ops = {k: "+" for k in ops}
        out, _ = run_reference(CGMExpressionEval(edges, ops, leaves, 4), 4)
        assert out[0] == [sum(leaves.values())]

    def test_caterpillar_tree(self):
        # Deep left-leaning tree exercises the compression path.
        nleaves = 24
        edges, ops, leaves = [], {}, {}
        nxt = 1
        node = 0
        for depth in range(nleaves - 1):
            left, right = nxt, nxt + 1
            nxt += 2
            edges.append((node, left))
            edges.append((node, right))
            ops[node] = "+"
            leaves[right] = 1
            node = left
        leaves[node] = 1
        want = brute_eval(edges, ops, leaves)
        out, ledger = run_reference(CGMExpressionEval(edges, ops, leaves, 4), 4)
        assert out[0] == [want] == [nleaves]
        # Compression keeps rounds well below the tree depth.
        assert ledger.num_supersteps < nleaves

    def test_mixed_ops(self):
        #        *
        #      /   \
        #     +     +
        #    / \   / \
        #   2   3 4   5   -> (2+3) * (4+5) = 45
        edges = [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]
        ops = {0: "*", 1: "+", 2: "+"}
        leaves = {3: 2, 4: 3, 5: 4, 6: 5}
        out, _ = run_reference(CGMExpressionEval(edges, ops, leaves, 4), 4)
        assert out[0] == [45]

    def test_rejects_bad_op(self):
        with pytest.raises(ValueError):
            CGMExpressionEval([(0, 1), (0, 2)], {0: "-"}, {1: 1, 2: 2}, 2)

    def test_em_sequential_matches(self):
        edges, ops, leaves = workloads.random_expression_tree(32, seed=6)
        want = brute_eval(edges, ops, leaves)
        out, report = simulate(
            CGMExpressionEval(edges, ops, leaves, 4), MACHINE, v=4, seed=4
        )
        assert out[0] == [want]
        assert report.io_ops > 0

    def test_em_parallel_matches(self):
        edges, ops, leaves = workloads.random_expression_tree(24, seed=7)
        want = brute_eval(edges, ops, leaves)
        machine = MachineParams(p=2, M=1 << 16, D=2, B=32, b=32)
        out, _ = simulate(
            CGMExpressionEval(edges, ops, leaves, 4), machine, v=4, k=2, seed=4
        )
        assert out[0] == [want]
