"""Tier-1 slice of the differential conformance fuzzer (``repro.conform``).

The nightly CI job runs thousands of random configurations; this file keeps
a small fixed-seed budget in the regular suite plus unit tests for every
layer the fuzzer is built from: the admissibility repair projection, the
equivalent-plane computation, the oracle stack, the greedy shrinker, the
``ReproCase`` serialization, and the ``python -m repro conform`` entry
point.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.conform import (
    ConformConfig,
    OracleFailure,
    ReproCase,
    fuzz,
    random_config,
    repair,
    run_case,
    shrink,
)
from repro.conform.case import SCHEMA_VERSION
from repro.conform.config import BASELINE_WORKLOADS
from repro.conform.oracles import (
    canonical_record,
    check_outputs,
    check_plane_equivalence,
    check_theorem1_io,
    lemma2_allowance,
)
from repro.conform.runner import _build_engine, equivalent_planes
from repro.conform.shrinker import shrink_candidates
from repro.conform.strategies import QUICK

REPO = Path(__file__).resolve().parent.parent


def small_config(**overrides):
    """A tiny admissible sequential sort config, tweakable per test."""
    base = dict(workload="sort", n=64, v=4, p=1, M=4096, D=2, B=16, b=16)
    base.update(overrides)
    return repair(base)


# -- strategies: draw + repair ------------------------------------------------


class TestRepair:
    def test_random_draws_are_admissible(self):
        for index in range(60):
            cfg = random_config(7, index, QUICK)
            if cfg.is_baseline:
                # Competitor sorters: the CGM-only axes must be folded away.
                assert (cfg.p, cfg.v, cfg.k) == (1, 1, None)
                assert cfg.engine == "sequential" and cfg.backend == "inline"
                assert cfg.fault == "none" and not cfg.crash
                assert not cfg.checkpoint and not cfg.io_overlap
                assert cfg.records == "object"
                assert cfg.M >= 2 * cfg.D * cfg.B
                cfg.baseline_sorter()  # constructible, i.e. admissible
                continue
            params = cfg.params()  # would raise ParameterError if not
            assert cfg.v % cfg.p == 0
            assert cfg.M >= cfg.D * cfg.B
            assert cfg.n % cfg.v == 0 and cfg.n >= 2 * cfg.v
            if cfg.workload == "sort":
                assert cfg.n >= cfg.v * cfg.v
            if cfg.fault == "kill":
                assert cfg.checkpoint
                assert 0 <= cfg.dead_disk < cfg.D
                assert 0 <= cfg.dead_proc < cfg.p
            if cfg.engine != "parallel":
                assert cfg.backend == "inline"
            assert params.k >= 1

    def test_repair_is_idempotent(self):
        for index in range(20):
            cfg = random_config(11, index)
            assert repair(cfg) == cfg

    def test_draws_are_deterministic_and_distinct(self):
        again = [random_config(3, i) for i in range(10)]
        assert [random_config(3, i) for i in range(10)] == again
        assert len(set(again)) > 1  # the stream actually varies

    def test_repair_projects_each_constraint(self):
        cfg = repair(dict(workload="sort", p=3, v=4, n=5, D=4, B=16, M=1))
        assert cfg.v == 6  # rounded up to a multiple of p
        assert cfg.n >= cfg.v * cfg.v and cfg.n % cfg.v == 0
        assert cfg.M >= cfg.D * cfg.B
        assert cfg.engine == "parallel"  # p > 1 forces the parallel engine

        killed = repair(
            dict(workload="permute", fault="kill", dead_disk=9, dead_proc=7,
                 D=2, p=1, v=2, n=8)
        )
        assert killed.checkpoint and killed.dead_disk < 2 and killed.dead_proc == 0

        seq = repair(dict(workload="prefix", p=1, engine="sequential",
                          backend="process", v=2, n=8))
        assert seq.backend == "inline"  # sequential engine folds the backend


# -- equivalent planes --------------------------------------------------------


class TestEquivalentPlanes:
    def test_plain_config_gets_fastpath_and_storage_planes(self):
        planes = dict(equivalent_planes(small_config()))
        assert set(planes) == {
            "primary", "fastpath", "file-storage", "async-storage",
            "vector-records",
        }
        assert planes["fastpath"].fast_io and planes["fastpath"].context_cache
        assert planes["file-storage"].storage == "file"
        assert not planes["file-storage"].io_overlap
        assert planes["async-storage"].storage == "file"
        assert planes["async-storage"].io_overlap
        assert planes["vector-records"].records == "vector"

    def test_fast_config_gets_a_reference_plane(self):
        planes = dict(
            equivalent_planes(small_config(fast_io=True, context_cache=True))
        )
        assert set(planes) == {
            "primary", "reference", "file-storage", "async-storage",
            "vector-records",
        }
        assert not planes["reference"].fast_io

    def test_process_backend_yields_five_planes(self):
        cfg = small_config(p=2, v=4, engine="parallel", backend="process",
                           fast_io=True)
        planes = dict(equivalent_planes(cfg))
        assert set(planes) == {
            "primary", "reference", "fastpath", "file-storage",
            "async-storage", "vector-records",
        }
        assert planes["reference"].backend == "inline"

    def test_vector_config_gets_an_object_records_plane(self):
        # A plain vector config folds object-records into the reference
        # plane (they would be identical); a fast vector config keeps both.
        planes = dict(equivalent_planes(small_config(records="vector")))
        assert planes["primary"].records == "vector"
        assert planes["reference"].records == "object"
        assert "object-records" not in planes
        planes = dict(equivalent_planes(
            small_config(records="vector", fast_io=True, context_cache=True)
        ))
        assert planes["object-records"].records == "object"
        assert planes["object-records"].fast_io

    def test_no_vector_plane_for_ineligible_workloads(self):
        planes = dict(equivalent_planes(small_config(workload="prefix")))
        assert "vector-records" not in planes

    def test_storage_config_gets_a_memory_reference(self):
        planes = dict(equivalent_planes(small_config(storage="mmap")))
        assert planes["primary"].storage == "mmap"
        assert planes["reference"].storage == "memory"
        # The file plane is only added when the primary is on memory; a
        # non-memory primary already exercises the storage differential.
        assert "file-storage" not in planes
        # ... but it does get the overlap differential on its own plane.
        assert planes["async-storage"].storage == "mmap"
        assert planes["async-storage"].io_overlap

    def test_overlap_config_differentiates_against_sync_plane(self):
        planes = dict(equivalent_planes(
            small_config(storage="file", io_overlap=True)
        ))
        assert planes["primary"].io_overlap
        assert not planes["reference"].io_overlap
        assert planes["async-storage"].storage == "file"
        assert not planes["async-storage"].io_overlap

    def test_planes_never_flip_counted_knobs(self):
        cfg = small_config(p=2, v=4, engine="parallel", checkpoint=True)
        for _key, plane in equivalent_planes(cfg):
            assert (plane.engine, plane.p, plane.checkpoint, plane.fault) == (
                cfg.engine, cfg.p, cfg.checkpoint, cfg.fault
            )


# -- oracles ------------------------------------------------------------------


class TestOracles:
    def test_small_case_passes_all_oracles(self):
        result = run_case(small_config())
        assert result.passed, [str(f) for f in result.failures]
        assert result.checks["output_vs_reference"] >= 2  # both planes
        assert result.checks["lemma2_balance"] > 0
        assert result.checks["theorem1_io"] > 0
        # One equivalence check per non-primary plane: fastpath +
        # file-storage + async-storage + vector-records.
        assert result.checks["plane_equivalence"] == 4

    def test_overlap_case_passes_all_oracles(self):
        result = run_case(small_config(storage="file", io_overlap=True))
        assert result.passed, [str(f) for f in result.failures]
        # The async-storage differential plane flips overlap off.
        assert result.checks["plane_equivalence"] >= 1

    def test_kill_case_exercises_resume_or_skip(self):
        cfg = small_config(fault="kill", checkpoint=True, dead_after=10)
        result = run_case(cfg)
        assert result.passed, [str(f) for f in result.failures]
        assert (
            result.checks["kill_resume"]
            + result.checks["kill_resume_skipped"]
            + result.checks["output_vs_reference"]
        ) >= 1

    def test_check_outputs_reports_differing_vps(self):
        assert check_outputs("x", [1, 2], [1, 2]) == []
        fails = check_outputs("x", [1, 9], [1, 2])
        assert fails[0].oracle == "output_vs_reference"
        assert "plane x" in fails[0].message

    def test_plane_equivalence_names_the_diverging_field(self):
        cfg = small_config()
        outputs, report = _build_engine(cfg, faults=None).run()
        rec = canonical_record(outputs, report)
        twin = dict(rec, outputs=list(rec["outputs"]) + ["extra"])
        fails = check_plane_equivalence({"a": rec, "b": twin})
        assert fails and "outputs" in fails[0].message
        assert check_plane_equivalence({"a": rec, "b": dict(rec)}) == []

    def test_lemma2_allowance_dominates_the_mean(self):
        for R in (1, 10, 1000):
            for D in (1, 2, 8):
                assert lemma2_allowance(R, D) > R / D
        assert lemma2_allowance(1000, 4) < 1000  # but it is not vacuous

    def test_theorem1_consistency_catches_a_tampered_counter(self):
        """The drill the fuzzer exists for: inflate one phase counter and
        the theorem1_io oracle must flag that superstep."""
        cfg = small_config()
        _outputs, report = _build_engine(cfg, faults=None).run()
        fails, n = check_theorem1_io(report.params, report)
        assert fails == [] and n > 0
        report.supersteps[0].phases.reorganize *= 2
        fails, _n = check_theorem1_io(report.params, report)
        assert any(
            f.oracle == "theorem1_io" and "Algorithm 2" in f.message
            for f in fails
        )


# -- competitor-sorter (baseline) workloads -----------------------------------


class TestBaselineWorkloads:
    """The counted-cost competitors run through the same fuzzer stack."""

    def baseline_config(self, workload, **overrides):
        base = dict(workload=workload, n=200, M=256, D=2, B=8)
        base.update(overrides)
        return repair(base)

    @pytest.mark.parametrize("workload", BASELINE_WORKLOADS)
    def test_case_passes_all_oracles(self, workload):
        result = run_case(self.baseline_config(workload))
        assert result.passed, [str(f) for f in result.failures]
        # Three planes: primary (memory), reference folds into primary here,
        # so at least primary + file-storage ran the output oracle.
        assert result.checks["output_vs_reference"] >= 2
        assert result.checks["theorem1_io"] == 1
        assert result.checks["plane_equivalence"] >= 1

    @pytest.mark.parametrize("workload", BASELINE_WORKLOADS)
    def test_non_memory_fast_primary_differentiates(self, workload):
        cfg = self.baseline_config(workload, storage="mmap", fast_io=True)
        result = run_case(cfg)
        assert result.passed, [str(f) for f in result.failures]
        # primary + reference + file-storage are all distinct planes here.
        assert result.checks["output_vs_reference"] == 3
        assert result.checks["plane_equivalence"] == 2

    def test_repair_folds_the_cgm_axes(self):
        cfg = repair(dict(
            workload="guidesort", p=4, v=8, k=3, engine="parallel",
            backend="process", fault="kill", crash=True, checkpoint=True,
            records="vector", io_overlap=True, storage="file",
            n=50, M=1, D=2, B=8,
        ))
        assert (cfg.p, cfg.v, cfg.k) == (1, 1, None)
        assert cfg.engine == "sequential" and cfg.backend == "inline"
        assert cfg.fault == "none" and not cfg.crash and not cfg.checkpoint
        assert cfg.records == "object" and not cfg.io_overlap
        assert cfg.storage == "file"  # the live axes survive repair
        assert cfg.n == 50 and cfg.B == 8
        assert cfg.M >= 2 * cfg.D * cfg.B
        assert repair(cfg) == cfg  # idempotent

    def test_algorithm_refuses_baseline_workloads(self):
        cfg = self.baseline_config("buffertree")
        with pytest.raises(ValueError, match="competitor"):
            cfg.algorithm()

    def test_shrink_candidates_stay_on_the_baseline_plane(self):
        cfg = self.baseline_config(
            "emmergesort", n=120, M=512, D=3, storage="mmap", fast_io=True
        )
        cands = list(shrink_candidates(cfg))
        assert cands  # fast_io / storage / n / M / B all shrinkable
        for cand in cands:
            assert cand.is_baseline
            cand.baseline_sorter()  # still admissible

    def test_bound_violation_is_flagged_as_theorem1_io(self, monkeypatch):
        from repro.baselines import KWayMergeSort

        monkeypatch.setattr(
            KWayMergeSort, "predicted_io_ops", lambda self, n: 0
        )
        result = run_case(self.baseline_config("emmergesort"))
        assert any(f.oracle == "theorem1_io" for f in result.failures)


# -- shrinker -----------------------------------------------------------------


class TestShrinker:
    def test_candidates_are_admissible_and_simpler_first(self):
        cfg = small_config(
            fault="transient", fast_io=True, context_cache=True, n=128, v=4
        )
        cands = list(shrink_candidates(cfg))
        assert cands[0].fault == "none"  # dropping the fault is tried first
        for cand in cands:
            cand.params()  # repair keeps every candidate admissible

    def test_shrink_returns_original_when_nothing_fails(self):
        cfg = small_config()
        shrunk, runs = shrink(cfg, "no_crash", budget=3)
        assert shrunk == cfg
        assert runs <= 3


# -- ReproCase serialization --------------------------------------------------


class TestReproCase:
    def make(self):
        return ReproCase(
            config=small_config(),
            oracle="theorem1_io",
            message="superstep 0: boom",
            fuzz_seed=0,
            case_index=5,
            original=small_config(n=256),
            shrink_runs=7,
        )

    def test_json_round_trip(self):
        case = self.make()
        assert ReproCase.from_json(case.to_json()) == case

    def test_unknown_schema_version_rejected(self):
        payload = json.loads(self.make().to_json())
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            ReproCase.from_json(json.dumps(payload))

    def test_save_load_and_replay_command(self, tmp_path):
        case = self.make()
        path = case.save(tmp_path / "case.json")
        assert ReproCase.load(path) == case
        cmd = case.replay_command(path)
        assert cmd.startswith("PYTHONPATH=src python -m repro conform --repro ")
        assert str(path) in cmd


# -- the tier-1 fuzz budget ---------------------------------------------------


class TestFuzzBudget:
    def test_fixed_seed_quick_budget_passes(self):
        stats = fuzz(seed=0, budget=10, profile=QUICK)
        assert stats.passed, [
            (r.oracle, r.message, r.config.describe()) for r in stats.failures
        ]
        assert stats.cases_run == 10
        assert stats.checks["output_vs_reference"] > 0
        assert stats.checks["theorem1_io"] > 0


# -- CLI ----------------------------------------------------------------------


class TestConformCLI:
    def run_cli(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", "conform", *argv],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_fuzz_smoke(self):
        proc = self.run_cli("--seed", "1", "--budget", "3", "--profile", "quick")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "all oracles passed" in proc.stdout

    def test_repro_of_a_fixed_case_exits_cleanly(self, tmp_path):
        case = ReproCase(
            config=small_config(), oracle="no_crash", message="was flaky"
        )
        path = case.save(tmp_path / "case.json")
        proc = self.run_cli("--repro", str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "no longer fails" in proc.stdout


# -- fixed regressions --------------------------------------------------------


class TestFixedRegressions:
    """Shrunk ReproCases of bugs the fuzzer found, replayed on every run."""

    def crash_resume_eof_case(self, engine, backend):
        """PR 8 fix: crash_resume EOFError on cached-context file crashes.

        With ``context_cache=True`` on the fast data plane, context saves
        are charge-only — the pickled bytes live in the host-side cache and
        the context region of the disk image stays empty.  The attach-based
        resume path restored ``ctx_used`` but invalidated the cache, so the
        first ``load_group`` after a crash read zero bytes off disk and
        died in ``pickle.loads(b"")`` (EOFError: Ran out of input).  Fixed
        by re-priming the cache from the checkpoint's portable
        ``proc_states`` at attach time (zero counted I/O).
        """
        return ReproCase(
            config=ConformConfig(
                p=2 if engine == "parallel" else 1,
                D=2, B=8, b=16, M=4096, v=4,
                workload="listrank", n=48,
                engine=engine, backend=backend,
                checkpoint=True, fast_io=True, context_cache=True,
                storage="file", crash=True, crash_point=4, crash_seed=3,
            ),
            oracle="crash_resume",
            message="recovery raised EOFError('Ran out of input')",
        )

    @pytest.mark.parametrize(
        "engine,backend",
        [("parallel", "inline"), ("parallel", "process"), ("sequential", "inline")],
    )
    def test_crash_resume_survives_cached_context_attach(self, engine, backend):
        case = self.crash_resume_eof_case(engine, backend)
        result = run_case(case.config)
        assert not result.failures, [
            (f.oracle, f.message) for f in result.failures
        ]
        assert result.checks["crash_resume"] >= 1

    def test_crash_resume_eof_case_round_trips(self):
        case = self.crash_resume_eof_case("parallel", "inline")
        assert ReproCase.from_json(case.to_json()) == case
