"""Tests for ear decomposition (structural verification of the ear axioms)."""

import networkx as nx
import pytest

from repro import workloads
from repro.algorithms.graphs.eardecomposition import ear_decomposition
from repro.core.simulator import simulate
from repro.params import MachineParams

MACHINE = MachineParams(p=1, M=1 << 17, D=2, B=32, b=32)


def two_edge_connected_graph(n, extra, seed):
    """A cycle through all vertices plus ``extra`` chords: 2-edge-connected."""
    import random

    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    edges = {(min(a, b), max(a, b)) for a, b in zip(order, order[1:] + order[:1])}
    while len(edges) < n + extra:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return sorted(edges)


def check_ear_axioms(nverts, edges, ears):
    """The defining properties of an ear decomposition."""
    # Every edge in exactly one ear.
    flat = [e for ear in ears for e in ear]
    assert sorted(flat) == sorted(edges)
    assert len(flat) == len(set(flat))

    def endpoints_and_pathness(ear):
        deg = {}
        for a, b in ear:
            deg[a] = deg.get(a, 0) + 1
            deg[b] = deg.get(b, 0) + 1
        odd = [u for u, d in deg.items() if d == 1]
        g = nx.Graph(ear)
        assert nx.is_connected(g), "ear must be connected"
        if odd:
            assert len(odd) == 2, "ear must be a simple path"
            assert all(d <= 2 for d in deg.values())
            return set(odd), set(deg)
        # cycle
        assert all(d == 2 for d in deg.values())
        return set(deg), set(deg)

    # Ear 0 is a cycle; later ears attach their endpoints to earlier ears
    # and contribute only new internal vertices.
    ends0, verts0 = endpoints_and_pathness(ears[0])
    assert ends0 == verts0  # a cycle
    seen = set(verts0)
    for ear in ears[1:]:
        ends, verts = endpoints_and_pathness(ear)
        assert ends <= seen, "ear endpoints must lie on earlier ears"
        internal = verts - ends
        assert internal.isdisjoint(seen - ends) or internal <= seen, \
            "internal vertices may not revisit earlier ears"
        seen |= verts


class TestEarDecomposition:
    def test_simple_cycle(self):
        n = 6
        edges = [(i, (i + 1) % n) for i in range(n)]
        ears = ear_decomposition(n, edges, 4)
        assert len(ears) == 1
        check_ear_axioms(n, [(min(e), max(e)) for e in edges], ears)

    def test_theta_graph(self):
        # Two vertices joined by three internally disjoint paths.
        edges = [(0, 1), (1, 2), (0, 3), (2, 3), (0, 4), (2, 4)]
        ears = ear_decomposition(5, edges, 4)
        assert len(ears) == 2
        check_ear_axioms(5, edges, ears)

    def test_complete_graph(self):
        n = 6
        edges = [(a, b) for a in range(n) for b in range(a + 1, n)]
        ears = ear_decomposition(n, edges, 4)
        # m - n + 1 ears for a 2-edge-connected graph.
        assert len(ears) == len(edges) - n + 1
        check_ear_axioms(n, edges, ears)

    @pytest.mark.parametrize("n,extra,seed", [(10, 5, 1), (20, 12, 2), (16, 20, 3)])
    def test_random_2edge_connected(self, n, extra, seed):
        edges = two_edge_connected_graph(n, extra, seed)
        ears = ear_decomposition(n, edges, 4)
        assert len(ears) == len(edges) - n + 1
        check_ear_axioms(n, edges, ears)

    def test_bridge_rejected(self):
        # Two triangles joined by a bridge.
        edges = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]
        with pytest.raises(ValueError, match="bridge|2-edge"):
            ear_decomposition(6, edges, 4)

    def test_tree_rejected(self):
        edges = workloads.random_tree_edges(8, seed=1)
        with pytest.raises(ValueError, match="2-edge"):
            ear_decomposition(8, edges, 4)

    def test_disconnected_rejected(self):
        edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        with pytest.raises(ValueError, match="disconnected"):
            ear_decomposition(6, edges, 4)

    def test_through_em_engine(self):
        n = 12
        edges = two_edge_connected_graph(n, 6, seed=9)
        run = lambda alg, vv: simulate(alg, MACHINE, v=vv, seed=3)[0]
        ears = ear_decomposition(n, edges, 4, run=run)
        check_ear_axioms(n, edges, ears)
