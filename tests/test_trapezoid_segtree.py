"""Tests for trapezoidal decomposition, polygon triangulation, segment trees."""

import random

import pytest

from repro import workloads
from repro.algorithms.geometry.segtree import CGMSegmentTreeStab, SegmentTree
from repro.algorithms.geometry.trapezoid import (
    trapezoidal_decomposition,
    triangulate_polygon,
)
from repro.bsp.runner import run_reference
from repro.core.simulator import simulate
from repro.params import MachineParams

MACHINE = MachineParams(p=1, M=1 << 17, D=2, B=32, b=32)


class TestTrapezoidalDecomposition:
    def test_two_stacked_segments(self):
        segs = [(0.0, 1.0, 10.0, 1.0), (2.0, 5.0, 8.0, 5.0)]
        walls = trapezoidal_decomposition(segs, 2)
        by_key = {(w["segment"], w["end"]): w for w in walls}
        # Lower segment's endpoints see the upper one only where it spans.
        assert by_key[(0, "left")]["above"] == -1  # x=0: nothing above
        assert by_key[(1, "left")]["below"] == 0  # x=2: segment 0 below
        assert by_key[(1, "right")]["below"] == 0
        assert by_key[(1, "left")]["above"] == -1

    @pytest.mark.parametrize("n,v", [(12, 4), (40, 4)])
    def test_matches_bruteforce(self, n, v):
        segs = workloads.random_segments(n, seed=n)
        walls = trapezoidal_decomposition(segs, v)
        assert len(walls) == 2 * n
        for w in walls:
            x, y = w["x"], w["y"]
            above = [
                (y1, i)
                for i, (x1, y1, x2, y2) in enumerate(segs)
                if i != w["segment"] and x1 <= x <= x2 and y1 > y
            ]
            below = [
                (y1, i)
                for i, (x1, y1, x2, y2) in enumerate(segs)
                if i != w["segment"] and x1 <= x <= x2 and y1 < y
            ]
            assert w["above"] == (min(above)[1] if above else -1)
            assert w["below"] == (max(below)[1] if below else -1)

    def test_through_em_engine(self):
        segs = workloads.random_segments(16, seed=5)
        run = lambda alg, vv: simulate(alg, MACHINE, v=vv, seed=1)[0]
        walls = trapezoidal_decomposition(segs, 4, run=run)
        assert len(walls) == 32


class TestTriangulatePolygon:
    def test_triangle(self):
        assert triangulate_polygon([(0, 0), (1, 0), (0, 1)]) == [(0, 1, 2)]

    def test_square(self):
        tris = triangulate_polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert len(tris) == 2

    def test_clockwise_input_handled(self):
        tris = triangulate_polygon([(0, 1), (1, 1), (1, 0), (0, 0)])
        assert len(tris) == 2

    def test_nonconvex(self):
        # An arrow-head with a reflex vertex.
        poly = [(0, 0), (4, 0), (4, 4), (2, 1.5), (0, 4)]
        tris = triangulate_polygon(poly)
        assert len(tris) == 3
        # Total area preserved.
        def area(t):
            (ax, ay), (bx, by), (cx, cy) = (poly[i] for i in t)
            return abs((bx - ax) * (cy - ay) - (cx - ax) * (by - ay)) / 2

        shoelace = 0.0
        n = len(poly)
        for i in range(n):
            x1, y1 = poly[i]
            x2, y2 = poly[(i + 1) % n]
            shoelace += x1 * y2 - x2 * y1
        assert sum(area(t) for t in tris) == pytest.approx(abs(shoelace) / 2)

    def test_star_polygon(self):
        import math

        pts = []
        for i in range(10):
            r = 4.0 if i % 2 == 0 else 1.5
            ang = math.pi * i / 5
            pts.append((r * math.cos(ang), r * math.sin(ang)))
        tris = triangulate_polygon(pts)
        assert len(tris) == 8

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            triangulate_polygon([(0, 0), (1, 1)])
        with pytest.raises(ValueError):
            triangulate_polygon([(0, 0), (1, 1), (2, 2)])


def brute_stab(intervals, x):
    return sorted(i for i, (a, b) in enumerate(intervals) if a <= x <= b)


class TestSequentialSegmentTree:
    def test_basic_stabbing(self):
        ivs = [(0.0, 10.0), (5.0, 15.0), (12.0, 20.0)]
        tree = SegmentTree([a for a, b in ivs] + [b for a, b in ivs])
        for i, (a, b) in enumerate(ivs):
            tree.insert(a, b, i)
        assert tree.stab(7.0) == [0, 1]
        assert tree.stab(11.0) == [1]
        assert tree.stab(12.0) == [1, 2]
        assert tree.stab(25.0) == []
        assert tree.stab(-1.0) == []

    def test_endpoint_inclusive(self):
        tree = SegmentTree([1.0, 5.0])
        tree.insert(1.0, 5.0, 0)
        assert tree.stab(1.0) == [0]
        assert tree.stab(5.0) == [0]

    @pytest.mark.parametrize("seed", range(4))
    def test_random_vs_bruteforce(self, seed):
        rng = random.Random(seed)
        ivs = []
        for _ in range(60):
            a = rng.uniform(0, 100)
            ivs.append((a, a + rng.uniform(0, 30)))
        tree = SegmentTree([a for a, b in ivs] + [b for a, b in ivs])
        for i, (a, b) in enumerate(ivs):
            tree.insert(a, b, i)
        for _ in range(100):
            x = rng.uniform(-10, 140)
            assert tree.stab(x) == brute_stab(ivs, x)


class TestCGMSegmentTree:
    @pytest.mark.parametrize("n,q,v", [(20, 10, 4), (80, 40, 4), (60, 60, 8)])
    def test_matches_bruteforce(self, n, q, v):
        rng = random.Random(n * 3 + q)
        ivs = []
        for _ in range(n):
            a = rng.uniform(0, 1000)
            ivs.append((a, a + rng.uniform(0, 400)))
        queries = [rng.uniform(-50, 1100) for _ in range(q)]
        out, ledger = run_reference(CGMSegmentTreeStab(ivs, queries, v), v)
        got = {}
        for part in out:
            got.update(dict(part))
        for qi, x in enumerate(queries):
            assert got[qi] == brute_stab(ivs, x), f"query {qi} at {x}"
        assert ledger.num_supersteps == CGMSegmentTreeStab.LAMBDA

    def test_point_intervals(self):
        ivs = [(5.0, 5.0), (5.0, 9.0)]
        out, _ = run_reference(CGMSegmentTreeStab(ivs, [5.0, 7.0, 9.0], 2), 2)
        got = dict(p for part in out for p in part)
        assert got[0] == [0, 1] and got[1] == [1] and got[2] == [1]

    def test_spanning_interval(self):
        # One interval covering everything must be reported by every query.
        rng = random.Random(9)
        ivs = [(rng.uniform(400, 500), rng.uniform(500, 600)) for _ in range(20)]
        ivs.append((-1e6, 1e6))
        queries = [rng.uniform(0, 1000) for _ in range(16)]
        out, _ = run_reference(CGMSegmentTreeStab(ivs, queries, 4), 4)
        got = dict(p for part in out for p in part)
        for qi in range(16):
            assert 20 in got[qi]
            assert got[qi] == brute_stab(ivs, queries[qi])

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            CGMSegmentTreeStab([(5.0, 1.0)], [2.0], 2)

    def test_em_sequential_matches(self):
        rng = random.Random(11)
        ivs = [(a := rng.uniform(0, 500), a + rng.uniform(0, 200)) for _ in range(40)]
        queries = [rng.uniform(0, 700) for _ in range(24)]
        out, report = simulate(CGMSegmentTreeStab(ivs, queries, 4), MACHINE, v=4)
        got = {}
        for part in out:
            got.update(dict(part))
        for qi, x in enumerate(queries):
            assert got[qi] == brute_stab(ivs, x)
        assert report.io_ops > 0
