"""Unit tests for the simulated disk and disk array (S2)."""

import pytest

from repro.emio.disk import Block, Disk, DiskError
from repro.emio.diskarray import DiskArray


class TestBlock:
    def test_nrecords_list(self):
        assert Block(records=[1, 2, 3]).nrecords() == 3

    def test_nrecords_bytes_rounds_up(self):
        assert Block(records=b"x" * 9).nrecords() == 2  # 9 bytes -> 2 records

    def test_validate_rejects_overfull(self):
        with pytest.raises(DiskError):
            Block(records=list(range(10))).validate(B=4)

    def test_validate_accepts_full(self):
        Block(records=list(range(4))).validate(B=4)


class TestDisk:
    def test_read_write_roundtrip(self):
        d = Disk(0, B=4)
        blk = Block(records=[1, 2])
        d.write_track(7, blk)
        assert d.read_track(7) is blk
        assert d.reads == 1 and d.writes == 1

    def test_unwritten_track_reads_none(self):
        d = Disk(0, B=4)
        assert d.read_track(3) is None

    def test_capacity_enforced(self):
        d = Disk(0, B=4, ntracks=2)
        d.write_track(1, Block(records=[]))
        with pytest.raises(DiskError):
            d.write_track(2, Block(records=[]))

    def test_negative_track_rejected(self):
        d = Disk(0, B=4)
        with pytest.raises(DiskError):
            d.read_track(-1)

    def test_used_tracks_and_high_water(self):
        d = Disk(0, B=4)
        d.write_track(0, Block(records=[1]))
        d.write_track(5, Block(records=[2]))
        d.write_track(5, None)
        assert d.used_tracks == 1
        assert d.high_water == 5

    def test_peek_free_of_charge(self):
        d = Disk(0, B=4)
        d.write_track(0, Block(records=[1]))
        d.reset_stats()
        assert d.peek(0).records == [1]
        assert d.accesses == 0


class TestDiskArray:
    def test_parallel_read_counts_one_op(self):
        da = DiskArray(D=4, B=4)
        da.parallel_write([(0, 0, Block(records=[1])), (1, 0, Block(records=[2]))])
        got = da.parallel_read([(0, 0), (1, 0)])
        assert [b.records for b in got] == [[1], [2]]
        assert da.parallel_ops == 2  # one write + one read

    def test_same_disk_twice_in_one_op_rejected(self):
        da = DiskArray(D=4, B=4)
        with pytest.raises(DiskError):
            da.parallel_read([(1, 0), (1, 1)])

    def test_too_many_tracks_in_one_op_rejected(self):
        da = DiskArray(D=2, B=4)
        with pytest.raises(DiskError):
            da.parallel_read([(0, 0), (1, 0), (0, 1)])

    def test_empty_op_is_free(self):
        da = DiskArray(D=2, B=4)
        assert da.parallel_read([]) == []
        da.parallel_write([])
        assert da.parallel_ops == 0

    def test_read_batched_preserves_order(self):
        da = DiskArray(D=3, B=4)
        for d in range(3):
            for t in range(2):
                da.disks[d].write_track(t, Block(records=[d * 10 + t]))
        got = da.read_batched([(2, 1), (0, 0), (2, 0), (1, 1)])
        assert [b.records[0] for b in got] == [21, 0, 20, 11]

    def test_read_batched_packs_distinct_disks_into_one_op(self):
        da = DiskArray(D=4, B=4)
        for d in range(4):
            da.disks[d].write_track(0, Block(records=[d]))
        da.parallel_ops = 0
        da.read_batched([(0, 0), (1, 0), (2, 0), (3, 0)])
        assert da.parallel_ops == 1

    def test_read_batched_same_disk_needs_multiple_ops(self):
        da = DiskArray(D=4, B=4)
        for t in range(3):
            da.disks[0].write_track(t, Block(records=[t]))
        da.parallel_ops = 0
        da.read_batched([(0, 0), (0, 1), (0, 2)])
        assert da.parallel_ops == 3

    def test_write_batched_returns_op_count(self):
        da = DiskArray(D=2, B=4)
        n = da.write_batched(
            [(0, 0, Block(records=[])), (1, 0, Block(records=[])), (0, 1, Block(records=[]))]
        )
        assert n == 2


class TestStoragePlaneDurability:
    """Barrier durability and directory-safety of the file storage plane."""

    @staticmethod
    def _simulate(tmp_path=None, **kwargs):
        from repro.algorithms.sorting import CGMSampleSort
        from repro.core.simulator import simulate
        from repro.params import MachineParams
        from repro.workloads import uniform_keys

        alg = CGMSampleSort(uniform_keys(256, seed=0), v=8)
        machine = MachineParams(p=1, M=1 << 18, D=4, B=16, b=32)
        return simulate(alg, machine, v=8, seed=0, **kwargs)

    def test_checkpoint_barriers_fsync_file_plane(self, tmp_path, monkeypatch):
        """Every checkpoint barrier flushes all track files to stable media
        (one fsync per drive); without that the checkpoint's storage
        references could point at data still sitting in page cache."""
        import os as _os

        synced = []
        real_fsync = _os.fsync
        monkeypatch.setattr(_os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd))
        self._simulate(checkpoint=True, storage="file", storage_dir=tmp_path / "t")
        assert len(synced) >= 4  # >= one barrier x D=4 drives

    def test_memory_plane_never_fsyncs(self, monkeypatch):
        import os as _os

        synced = []
        monkeypatch.setattr(_os, "fsync", lambda fd: synced.append(fd))
        self._simulate(checkpoint=True)
        assert synced == []

    def test_nonempty_storage_dir_refused_by_name(self, tmp_path):
        """Pointing storage_dir at a directory holding foreign files must
        fail loudly, naming the path, before any track file is created."""
        root = tmp_path / "not-mine"
        root.mkdir()
        (root / "data.csv").write_text("precious")
        with pytest.raises(DiskError) as exc_info:
            self._simulate(storage="file", storage_dir=root)
        assert str(root) in str(exc_info.value)
        assert sorted(p.name for p in root.iterdir()) == ["data.csv"]

    def test_marked_storage_dir_is_adopted(self, tmp_path):
        """A directory from a previous run (carrying the marker) is reused —
        that is what crash-resume on the same storage_dir requires."""
        root = tmp_path / "tracks"
        out1, _ = self._simulate(storage="file", storage_dir=root)
        out2, _ = self._simulate(storage="file", storage_dir=root)
        assert out1 == out2
