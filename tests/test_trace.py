"""Tests for the I/O trace recorder/visualizer."""

from repro.bsp.runner import run_reference
from repro.core.seqsim import SequentialEMSimulation
from repro.core.simulator import build_params
from repro.emio.disk import Block
from repro.emio.diskarray import DiskArray
from repro.emio.trace import IOTrace
from repro.params import MachineParams

from .helpers import AllToAllExchange


class TestIOTrace:
    def test_records_ops(self):
        array = DiskArray(D=4, B=8)
        trace = IOTrace.attach(array)
        array.parallel_write([(0, 0, Block(records=[1])), (1, 0, Block(records=[2]))])
        array.parallel_read([(0, 0)])
        assert len(trace.ops) == 2
        assert trace.ops[0].kind == "W" and trace.ops[0].disks == (0, 1)
        assert trace.ops[1].kind == "R" and trace.ops[1].disks == (0,)

    def test_counting_still_works_through_wrapper(self):
        array = DiskArray(D=2, B=8)
        IOTrace.attach(array)
        array.parallel_write([(0, 0, Block(records=[1]))])
        assert array.parallel_ops == 1

    def test_utilization(self):
        array = DiskArray(D=4, B=8)
        trace = IOTrace.attach(array)
        array.parallel_write([(d, 0, Block(records=[d])) for d in range(4)])
        array.parallel_read([(0, 0)])
        assert trace.utilization() == (4 + 1) / (2 * 4)

    def test_render_shape(self):
        array = DiskArray(D=3, B=8)
        trace = IOTrace.attach(array)
        array.parallel_write([(0, 0, Block(records=[])), (2, 0, Block(records=[]))])
        text = trace.render()
        lines = text.splitlines()
        assert len(lines) == 4  # 3 disks + footer
        assert lines[0].startswith("disk  0 |W|")
        assert lines[1].startswith("disk  1 |.|")

    def test_counts_summary(self):
        array = DiskArray(D=2, B=8)
        trace = IOTrace.attach(array)
        array.parallel_write([(0, 0, Block(records=[]))])
        array.parallel_read([(0, 0), (1, 0)])
        c = trace.counts()
        assert c["ops"] == 2 and c["reads"] == 1 and c["writes"] == 1
        assert c["disk_accesses"] == 3

    def test_trace_full_simulation(self):
        """Attach to a live engine: the simulation's I/O is fully visible."""
        alg = AllToAllExchange()
        machine = MachineParams(p=1, M=2 * alg.context_size(), D=4, B=16, b=16)
        params = build_params(AllToAllExchange(), machine, v=8, k=2)
        sim = SequentialEMSimulation(AllToAllExchange(), params, seed=1)
        trace = IOTrace.attach(sim.array)
        out, report = sim.run()
        ref, _ = run_reference(AllToAllExchange(), 8)
        assert out == ref
        # Every counted op was traced (init + supersteps + output).
        assert len(trace.ops) == sim.array.parallel_ops
        # The simulation keeps the disks busy: well above single-disk usage.
        assert trace.utilization() > 1.5 / 4

    def test_limit_stops_recording(self):
        array = DiskArray(D=1, B=8)
        trace = IOTrace.attach(array, limit=3)
        for t in range(5):
            array.parallel_write([(0, t, Block(records=[]))])
        assert len(trace.ops) == 3
        assert array.parallel_ops == 5  # counting unaffected
