"""Tests for the I/O trace recorder/visualizer."""

from repro.bsp.runner import run_reference
from repro.core.seqsim import SequentialEMSimulation
from repro.core.simulator import build_params
from repro.emio.disk import Block
from repro.emio.diskarray import DiskArray
from repro.emio.trace import IOTrace
from repro.params import MachineParams

from .helpers import AllToAllExchange


class TestIOTrace:
    def test_records_ops(self):
        array = DiskArray(D=4, B=8)
        trace = IOTrace.attach(array)
        array.parallel_write([(0, 0, Block(records=[1])), (1, 0, Block(records=[2]))])
        array.parallel_read([(0, 0)])
        assert len(trace.ops) == 2
        assert trace.ops[0].kind == "W" and trace.ops[0].disks == (0, 1)
        assert trace.ops[1].kind == "R" and trace.ops[1].disks == (0,)

    def test_counting_still_works_through_wrapper(self):
        array = DiskArray(D=2, B=8)
        IOTrace.attach(array)
        array.parallel_write([(0, 0, Block(records=[1]))])
        assert array.parallel_ops == 1

    def test_utilization(self):
        array = DiskArray(D=4, B=8)
        trace = IOTrace.attach(array)
        array.parallel_write([(d, 0, Block(records=[d])) for d in range(4)])
        array.parallel_read([(0, 0)])
        assert trace.utilization() == (4 + 1) / (2 * 4)

    def test_render_shape(self):
        array = DiskArray(D=3, B=8)
        trace = IOTrace.attach(array)
        array.parallel_write([(0, 0, Block(records=[])), (2, 0, Block(records=[]))])
        text = trace.render()
        lines = text.splitlines()
        assert len(lines) == 4  # 3 disks + footer
        assert lines[0].startswith("disk  0 |W|")
        assert lines[1].startswith("disk  1 |.|")

    def test_counts_summary(self):
        array = DiskArray(D=2, B=8)
        trace = IOTrace.attach(array)
        array.parallel_write([(0, 0, Block(records=[]))])
        array.parallel_read([(0, 0), (1, 0)])
        c = trace.counts()
        assert c["ops"] == 2 and c["reads"] == 1 and c["writes"] == 1
        assert c["disk_accesses"] == 3

    def test_trace_full_simulation(self):
        """Attach to a live engine: the simulation's I/O is fully visible."""
        alg = AllToAllExchange()
        machine = MachineParams(p=1, M=2 * alg.context_size(), D=4, B=16, b=16)
        params = build_params(AllToAllExchange(), machine, v=8, k=2)
        sim = SequentialEMSimulation(AllToAllExchange(), params, seed=1)
        trace = IOTrace.attach(sim.array)
        out, report = sim.run()
        ref, _ = run_reference(AllToAllExchange(), 8)
        assert out == ref
        # Every counted op was traced (init + supersteps + output).
        assert len(trace.ops) == sim.array.parallel_ops
        # The simulation keeps the disks busy: well above single-disk usage.
        assert trace.utilization() > 1.5 / 4

    def test_limit_stops_recording(self):
        array = DiskArray(D=1, B=8)
        trace = IOTrace.attach(array, limit=3)
        for t in range(5):
            array.parallel_write([(0, t, Block(records=[]))])
        assert len(trace.ops) == 3
        assert array.parallel_ops == 5  # counting unaffected

    def test_dropped_ops_counted_and_flagged(self):
        array = DiskArray(D=1, B=8)
        trace = IOTrace.attach(array, limit=3)
        for t in range(5):
            array.parallel_write([(0, t, Block(records=[]))])
        assert trace.dropped == 2
        c = trace.counts()
        assert c["ops"] == 3 and c["dropped"] == 2
        assert "(2 ops dropped past limit)" in trace.render()
        # An untruncated trace carries no noise in the footer.
        clean = IOTrace.attach(DiskArray(D=1, B=8))
        assert clean.dropped == 0 and "dropped" not in clean.render()

    def test_detach_restores_array(self):
        array = DiskArray(D=2, B=8, fast_io=True)
        orig_read = array._attempt_read
        orig_write = array._attempt_write
        assert array.fast_data_plane is True
        trace = IOTrace.attach(array)
        assert array.hooked is True and array.fast_data_plane is False
        array.parallel_write([(0, 0, Block(records=[1]))])
        trace.detach()
        assert array.hooked is False and array.fast_data_plane is True
        assert array._attempt_read == orig_read
        assert array._attempt_write == orig_write
        # Post-detach operations are executed and counted but not recorded.
        array.parallel_read([(0, 0)])
        assert len(trace.ops) == 1 and array.parallel_ops == 2
        trace.detach()  # idempotent
        IOTrace(D=2).detach()  # never-attached detach is safe

    def test_context_manager_detaches(self):
        array = DiskArray(D=2, B=8)
        with IOTrace.attach(array) as trace:
            array.parallel_write([(0, 0, Block(records=[1]))])
            assert array.hooked is True
        assert array.hooked is False
        assert len(trace.ops) == 1
        array.parallel_read([(0, 0)])
        assert len(trace.ops) == 1  # no longer recording


class TestFaultTracing:
    def test_retried_ops_recorded_distinctly(self):
        """Retry rounds appear as separate trace entries with retry=True,
        rendered lowercase, and counted in counts()['retries']."""
        from repro.emio.faults import FaultPlan

        plan = FaultPlan(seed=0, read_error_rate=0.5)
        array = DiskArray(D=2, B=8, faults=plan)
        trace = IOTrace.attach(array)
        array.parallel_write([(0, 0, Block(records=[1])), (1, 0, Block(records=[2]))])
        for _ in range(20):
            got = array.parallel_read([(0, 0), (1, 0)])
            assert [b.records for b in got] == [[1], [2]]
        c = trace.counts()
        assert c["retries"] > 0
        assert array.retry_reads == c["retries"] - array.retry_writes
        # Trace sees every physical attempt, not just logical operations.
        assert c["ops"] == array.parallel_ops
        retried = [op for op in trace.ops if op.retry]
        assert all(op.kind in ("R", "W") for op in retried)
        assert "r" in trace.render()  # lowercase marks the retry rounds

    def test_fresh_and_retry_rounds_never_mixed(self):
        from repro.emio.faults import FaultPlan

        plan = FaultPlan(seed=1, read_error_rate=0.4, write_error_rate=0.4)
        array = DiskArray(D=4, B=8, faults=plan)
        trace = IOTrace.attach(array)
        for t in range(10):
            array.parallel_write([(d, t, Block(records=[d])) for d in range(4)])
            array.parallel_read([(d, t) for d in range(4)])
        # A retry round only re-touches disks whose access failed, so it can
        # never be wider than the fresh round that spawned it.
        for op in trace.ops:
            if op.retry:
                assert len(op.disks) <= 4

    def test_utilization_in_degraded_mode(self):
        """With one dead drive, a 4-slot logical write takes two physical
        rounds over 3 survivors: utilization reflects the real occupancy."""
        from repro.emio.faults import DataLossError, FaultPlan

        import pytest

        plan = FaultPlan(seed=0, dead_disk=3, dead_after=0)
        array = DiskArray(D=4, B=8, faults=plan)
        with pytest.raises(DataLossError):
            array.parallel_read([(3, 0)])  # kills the drive
        trace = IOTrace.attach(array)
        array.parallel_write([(d, 1, Block(records=[d])) for d in range(4)])
        # 4 logical targets on 3 survivors: one full round of 3 + one of 1.
        assert len(trace.ops) == 2
        assert sorted(len(op.disks) for op in trace.ops) == [1, 3]
        assert trace.utilization() == (3 + 1) / (2 * 4)
        for op in trace.ops:
            assert 3 not in op.disks  # the dead drive never participates
