"""Integration tests for Algorithm 3 (parallel EM simulation)."""

import pytest

from repro.bsp.runner import run_reference
from repro.core.parsim import ParallelEMSimulation
from repro.params import BSPParams, MachineParams, ParameterError, SimulationParams

from .helpers import (
    AllToAllExchange,
    MultiRoundAccumulate,
    NoCommunication,
    RingShift,
    TotalExchangeSum,
)


def make_params(alg, v, p=2, D=2, B=16, k=None):
    mu = alg.context_size()
    M = max(mu * (k or 2), D * B)
    return SimulationParams(
        machine=MachineParams(p=p, M=M, D=D, B=B, b=B),
        bsp=BSPParams(v=v, mu=mu, gamma=max(alg.comm_bound(), 1)),
        k=k,
    )


ALGS = [
    lambda: RingShift(payload_size=4, rounds=2),
    lambda: AllToAllExchange(),
    lambda: TotalExchangeSum(),
    lambda: MultiRoundAccumulate(rounds=3),
    lambda: NoCommunication(),
]


@pytest.mark.parametrize("alg_factory", ALGS)
@pytest.mark.parametrize("p", [1, 2, 4])
def test_transparency_vs_reference(alg_factory, p):
    v = 8
    ref_out, _ = run_reference(alg_factory(), v)
    params = make_params(alg_factory(), v, p=p, k=2)
    em_out, _ = ParallelEMSimulation(alg_factory(), params, seed=7).run()
    assert em_out == ref_out


@pytest.mark.parametrize("D", [1, 3])
@pytest.mark.parametrize("k", [1, 4])
def test_transparency_across_k_and_D(D, k):
    v = 16
    ref_out, _ = run_reference(AllToAllExchange(), v)
    params = make_params(AllToAllExchange(), v, p=2, D=D, k=k)
    em_out, _ = ParallelEMSimulation(AllToAllExchange(), params, seed=11).run()
    assert em_out == ref_out


@pytest.mark.parametrize("seed", range(4))
def test_transparency_independent_of_seed(seed):
    v = 12
    ref_out, _ = run_reference(TotalExchangeSum(), v)
    params = make_params(TotalExchangeSum(), v, p=3, k=2)
    em_out, _ = ParallelEMSimulation(TotalExchangeSum(), params, seed=seed).run()
    assert em_out == ref_out


def test_v_must_divide_into_whole_groups():
    alg = NoCommunication()
    with pytest.raises(ParameterError):
        SimulationParams(
            machine=MachineParams(p=3, M=4096, D=1, B=16),
            bsp=BSPParams(v=8, mu=alg.context_size(), gamma=1),
            k=2,
        )


def test_communication_is_charged():
    v = 8
    params = make_params(AllToAllExchange(), v, p=2, k=2)
    _, report = ParallelEMSimulation(AllToAllExchange(), params, seed=1).run()
    assert report.ledger.total_comm_packets > 0


def test_io_is_charged_per_processor_max():
    v = 8
    params = make_params(MultiRoundAccumulate(rounds=2), v, p=2, k=2)
    _, report = ParallelEMSimulation(
        MultiRoundAccumulate(rounds=2), params, seed=1
    ).run()
    assert report.io_ops > 0
    assert report.io_ops == report.ledger.total_io_ops


def test_syncs_scale_with_rounds():
    v = 16
    params = make_params(MultiRoundAccumulate(rounds=2), v, p=2, k=2)
    _, report = ParallelEMSimulation(
        MultiRoundAccumulate(rounds=2), params, seed=1
    ).run()
    # Each compound superstep runs v/(p*k)=4 rounds with >=2 barriers each.
    for s in report.ledger.supersteps:
        assert s.syncs >= 2 * 4
