"""Cross-engine consistency matrix (invariant I3 at full breadth).

Every algorithm in the library runs on the in-memory reference runner, the
sequential EM engine (Algorithm 1), and the parallel EM engine
(Algorithm 3, p=2 and p=4) — all four must agree bit-for-bit.  The earlier
per-module tests cover depth; this matrix covers breadth.
"""

import pytest

from repro import workloads
from repro.algorithms import (
    CGMMatrixTranspose,
    CGMMultisearch,
    CGMPermutation,
    CGMPrefixSums,
    CGMSampleSort,
)
from repro.algorithms.geometry import (
    CGM3DConvexHull,
    CGMSegmentTreeStab,
    CGM3DMaxima,
    CGMAllNearestNeighbors,
    CGMConvexHull,
    CGMDelaunay,
    CGMDominanceCounting,
    CGMLowerEnvelope,
    CGMNextElementSearch,
    CGMRectangleUnionArea,
    CGMSeparability,
)
from repro.algorithms.graphs import (
    CGMBatchedRMQ,
    CGMConnectedComponents,
    CGMEulerTourSuccessor,
    CGMExpressionEval,
    CGMListRanking,
    CGMSpanningForest,
)
from repro.bsp.runner import run_reference
from repro.core.simulator import simulate
from repro.params import MachineParams

V = 8


def _expr_args():
    edges, ops, leaves = workloads.random_expression_tree(16, seed=44)
    return edges, ops, leaves


ALGORITHMS = {
    "sample_sort": lambda: CGMSampleSort(workloads.uniform_keys(128, seed=40), V),
    "permutation": lambda: CGMPermutation(
        list(range(96)), workloads.random_permutation(96, seed=41), V
    ),
    "transpose": lambda: CGMMatrixTranspose(
        workloads.matrix_entries(8, 12, seed=42), 8, 12, V
    ),
    "multisearch": lambda: CGMMultisearch(
        sorted(workloads.uniform_keys(96, seed=60, hi=5000)),
        workloads.uniform_keys(32, seed=61, hi=6000),
        V,
    ),
    "prefix_sums": lambda: CGMPrefixSums(
        workloads.uniform_keys(80, seed=43, hi=50), V
    ),
    "convex_hull": lambda: CGMConvexHull(workloads.random_points(64, seed=44), V),
    "convex_hull_3d": lambda: CGM3DConvexHull(
        workloads.random_points(48, seed=44, dims=3), V
    ),
    "delaunay": lambda: CGMDelaunay(workloads.random_points(40, seed=45), V),
    "maxima3d": lambda: CGM3DMaxima(
        workloads.random_points(48, seed=46, dims=3), V
    ),
    "dominance": lambda: CGMDominanceCounting(
        workloads.random_points(48, seed=47), V
    ),
    "rect_union": lambda: CGMRectangleUnionArea(
        workloads.random_rectangles(40, seed=48), V
    ),
    "lower_envelope": lambda: CGMLowerEnvelope(
        workloads.random_segments(32, seed=49), V
    ),
    "nearest": lambda: CGMAllNearestNeighbors(
        workloads.random_points(40, seed=50), V
    ),
    "next_element": lambda: CGMNextElementSearch(
        workloads.random_segments(24, seed=51),
        workloads.random_points(24, seed=52),
        V,
    ),
    "segment_tree": lambda: CGMSegmentTreeStab(
        [(float(a), float(a + 40)) for a in range(0, 400, 10)],
        [float(x) for x in range(5, 400, 25)],
        V,
    ),
    "separability": lambda: CGMSeparability(
        workloads.random_points(24, seed=53),
        workloads.random_points(24, seed=54),
        [(1.0, 0.0), (0.0, 1.0)],
        V,
    ),
    "list_ranking": lambda: CGMListRanking(
        workloads.random_linked_list(96, seed=55), V
    ),
    "euler_tour": lambda: CGMEulerTourSuccessor(
        workloads.random_tree_edges(48, seed=56), 0, V
    ),
    "connected_components": lambda: CGMConnectedComponents(
        48, workloads.random_graph_edges(48, 80, seed=57), V
    ),
    "spanning_forest": lambda: CGMSpanningForest(
        48, workloads.random_graph_edges(48, 80, seed=58, connected=True), V
    ),
    "rmq": lambda: CGMBatchedRMQ(
        workloads.uniform_keys(64, seed=59, hi=100),
        [(3, 60), (10, 20), (0, 63), (31, 32)],
        V,
    ),
    "expression_eval": lambda: CGMExpressionEval(*_expr_args(), V),
}


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
@pytest.mark.parametrize("p", [1, 2, 4])
def test_engines_agree(name, p):
    factory = ALGORITHMS[name]
    ref, _ = run_reference(factory(), V)
    alg = factory()
    machine = MachineParams(
        p=p, M=max(2 * alg.context_size(), 4 * 32), D=2, B=32, b=32
    )
    out, report = simulate(factory(), machine, v=V, k=2, seed=p * 17 + 1)
    assert out == ref, f"{name} diverged on p={p}"
    assert report.io_ops > 0
