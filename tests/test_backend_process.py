"""Process-backend transparency: ``backend="process"`` must be invisible.

The parallel engine's real processors can run inline (the reference) or one
per ``multiprocessing`` worker.  Every counted quantity — outputs, ledger,
reports — must be identical, and the robustness machinery (fault recovery,
checkpoint resume, contract enforcement) must work across the process
boundary exactly as it does inline.
"""

import pytest

from repro.algorithms.sorting import CGMSampleSort
from repro.bsp.program import AlgorithmError, BSPAlgorithm, VPContext
from repro.core.backend import InlineBackend, ProcessBackend, make_backend
from repro.core.checkpoint import SimulationAborted
from repro.core.parsim import ParallelEMSimulation
from repro.core.simulator import build_params, simulate
from repro.emio.faults import FaultPlan, RetryPolicy
from repro.params import MachineParams
from repro.workloads import uniform_keys


def build(p=4, seed=0, n=512, v=8, **kwargs):
    alg = CGMSampleSort(uniform_keys(n, seed=5), v=v)
    machine = MachineParams(p=p, M=1 << 18, D=4, B=16, b=32)
    params = build_params(alg, machine, v=v)
    return ParallelEMSimulation(alg, params, seed=seed, **kwargs)


def golden(sim):
    outputs, report = sim.run()
    return {
        "outputs": outputs,
        "ledger": report.ledger.summary(),
        "supersteps": [
            (repr(s.phases), repr(s.routing), s.comm_packets, s.halted)
            for s in report.supersteps
        ],
        "init_io": report.init_io_ops,
        "output_io": report.output_io_ops,
        "tracks": report.disk_space_tracks,
    }


class GammaLiar(BSPAlgorithm):
    """Declares a tiny communication bound, then floods vp 0."""

    def context_size(self):
        return 4096

    def comm_bound(self):
        return 8

    def initial_state(self, pid, nprocs):
        return {}

    def superstep(self, ctx: VPContext):
        if ctx.step == 0:
            ctx.send(0, list(range(500)))
        ctx.vote_halt()

    def output(self, pid, state):
        return None


class TestProcessTransparency:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_inline(self, p):
        assert golden(build(p=p, backend="process")) == golden(build(p=p))

    def test_matches_inline_with_checkpointing(self):
        ref = golden(build(checkpoint=True))
        assert golden(build(checkpoint=True, backend="process")) == ref


class TestProcessRobustness:
    def test_fault_recovery_inside_workers(self):
        """A disk death inside a worker rolls every worker back to the
        barrier and the run still completes correctly."""
        expected = golden(build())["outputs"]
        plan = FaultPlan(seed=0, dead_disk=0, dead_after=30, dead_proc=1)
        sim = build(
            backend="process",
            faults=plan,
            retry=RetryPolicy(max_retries=2),
            checkpoint=True,
        )
        outputs, report = sim.run()
        assert outputs == expected
        assert report.faults.recoveries >= 1
        assert report.faults.disks_died >= 1

    def test_cross_backend_checkpoint_resume(self):
        """A checkpoint written by the inline backend restores into process
        workers (and vice-versa the state layout is engine-owned)."""
        expected = golden(build())["outputs"]
        plan = FaultPlan(seed=0, dead_disk=0, dead_after=30, dead_proc=0)
        dying = build(
            faults=plan,
            retry=RetryPolicy(max_retries=2),
            checkpoint=True,
            max_recoveries=0,
        )
        with pytest.raises(SimulationAborted) as exc_info:
            dying.run()
        ckpt = exc_info.value.checkpoint
        assert ckpt is not None
        fresh = build(backend="process", checkpoint=True)
        outputs, report = fresh.resume_from_checkpoint(ckpt)
        assert outputs == expected
        assert report.faults.resumed_from_step == ckpt.step

    def test_contract_violations_propagate(self):
        """An AlgorithmError raised inside a worker surfaces to the caller."""
        alg = GammaLiar()
        machine = MachineParams(p=4, M=1 << 18, D=4, B=16, b=32)
        params = build_params(alg, machine, v=8)
        sim = ParallelEMSimulation(alg, params, backend="process")
        with pytest.raises(AlgorithmError, match="gamma"):
            sim.run()


class TestBackendPlumbing:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("threads", [])

    def test_sequential_engine_rejects_process_backend(self):
        alg = CGMSampleSort(uniform_keys(256, seed=5), v=8)
        machine = MachineParams(p=1, M=1 << 18, D=4, B=16, b=32)
        with pytest.raises(ValueError, match="parallel engine"):
            simulate(alg, machine, v=8, engine="sequential", backend="process")

    def test_rejection_names_both_knobs_and_both_remedies(self):
        """The error must point at `backend` and `engine` by name and spell
        out both ways to fix the call."""
        alg = CGMSampleSort(uniform_keys(256, seed=5), v=8)
        machine = MachineParams(p=1, M=1 << 18, D=4, B=16, b=32)
        with pytest.raises(ValueError) as exc_info:
            simulate(alg, machine, v=8, engine="sequential", backend="process")
        msg = str(exc_info.value)
        assert "backend='process'" in msg
        assert "engine='sequential'" in msg
        assert "engine='parallel'" in msg
        assert "backend='inline'" in msg

    def test_rejection_explains_auto_resolution(self):
        """With engine='auto' on p=1 the error must say *why* the sequential
        engine was picked, so the caller knows p (not their engine arg) is
        the cause."""
        alg = CGMSampleSort(uniform_keys(256, seed=5), v=8)
        machine = MachineParams(p=1, M=1 << 18, D=4, B=16, b=32)
        with pytest.raises(ValueError) as exc_info:
            simulate(alg, machine, v=8, engine="auto", backend="process")
        msg = str(exc_info.value)
        assert "engine='auto' resolved to 'sequential'" in msg
        assert "machine.p=1" in msg

    def test_workers_shut_down_after_run(self):
        sim = build(p=2, backend="process")
        assert isinstance(sim.backend, ProcessBackend)
        workers = list(sim.backend._workers)
        sim.run()
        assert sim.backend._workers == []
        assert all(not w.is_alive() for w in workers)
        sim.backend.close()  # idempotent

    def test_inline_backend_exposes_processors(self):
        sim = build(p=2)
        assert isinstance(sim.backend, InlineBackend)
        assert len(sim.procs) == 2
        assert [pr.index for pr in sim.procs] == [0, 1]
