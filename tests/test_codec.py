"""Property tests of the record-codec registry (DESIGN §10).

Every registered :class:`~repro.emio.codec.RecordCodec` must be a lossless
round trip: ``decode(encode(x)) == x`` for every representable record list,
including empty inputs, extreme magnitudes, and (for float codecs) NaN and
signed infinities.  The byte plane must round-trip too —
``from_bytes(to_bytes(a))`` reproduces the array — because storage images
and message frames both travel through it.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from hypothesis import given, strategies as st

from repro.emio.codec import RecordCodec, codecs, get_codec, register_codec

I64_MIN, I64_MAX = -(1 << 63), (1 << 63) - 1

i64s = st.integers(min_value=I64_MIN, max_value=I64_MAX)
f64s = st.floats(allow_nan=True, allow_infinity=True, width=64)
kvs = st.tuples(i64s, i64s)


def _eq(a, b) -> bool:
    """Record equality with NaN == NaN (bitwise intent, not IEEE)."""
    if isinstance(a, tuple):
        return len(a) == len(b) and all(_eq(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


def _roundtrip(codec: RecordCodec, records: list) -> None:
    arr = codec.encode(records)
    assert isinstance(arr, np.ndarray) and arr.ndim == 1
    assert len(arr) == len(records)
    out = codec.decode(arr)
    assert len(out) == len(records)
    for x, y in zip(records, out):
        assert _eq(x, y), (x, y)
    # Byte-plane round trip: the storage/wire representation is lossless.
    again = codec.from_bytes(codec.to_bytes(codec.encode(records)))
    for x, y in zip(records, codec.decode(again)):
        assert _eq(x, y), (x, y)


@given(st.lists(i64s, max_size=64))
def test_i64_roundtrip(records):
    _roundtrip(get_codec("i64"), records)


@given(st.lists(f64s, max_size=64))
def test_f64_roundtrip(records):
    _roundtrip(get_codec("f64"), records)


@given(st.lists(kvs, max_size=64))
def test_kv_i64_roundtrip(records):
    _roundtrip(get_codec("kv_i64"), records)


def test_every_registered_codec_roundtrips_empty_and_extremes():
    boundary = {
        "i": [0, 1, -1, I64_MIN, I64_MAX],
        "f": [0.0, -0.0, 1.5, math.inf, -math.inf, math.nan,
              5e-324, 1.7976931348623157e308],
    }
    for codec in codecs().values():
        _roundtrip(codec, [])
        if codec.dtype.names:
            fields = [codec.dtype[name].kind for name in codec.dtype.names]
            rows = list(zip(*(boundary[k][:3] for k in fields)))
            _roundtrip(codec, rows)
        else:
            _roundtrip(codec, boundary[codec.dtype.kind])


def test_decode_returns_plain_python_scalars():
    out = get_codec("i64").decode(np.array([1, 2], dtype="<i8"))
    assert all(type(x) is int for x in out)
    out = get_codec("f64").decode(np.array([1.5], dtype="<f8"))
    assert all(type(x) is float for x in out)
    out = get_codec("kv_i64").decode(
        np.array([(1, 2)], dtype=[("k", "<i8"), ("v", "<i8")])
    )
    assert out == [(1, 2)] and type(out[0]) is tuple


def test_registry_is_idempotent_but_rejects_conflicts():
    existing = get_codec("i64")
    register_codec(existing)  # same definition: a no-op
    with pytest.raises(ValueError):
        register_codec(RecordCodec("i64", np.dtype("<f8")))
    with pytest.raises(KeyError):
        get_codec("no-such-codec")


def test_from_bytes_is_zero_copy_readonly():
    codec = get_codec("i64")
    blob = codec.to_bytes(codec.encode([1, 2, 3]))
    arr = codec.from_bytes(blob)
    assert not arr.flags.writeable  # view over the immutable bytes
    assert arr.tolist() == [1, 2, 3]
