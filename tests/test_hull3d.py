"""Tests for the 3D convex hull kernel and the CGM algorithm.

Oracle: ``scipy.spatial.ConvexHull`` (Qhull).  In general position the 3D
hull's facet triangulation is unique, so face sets are compared exactly.
"""

import pytest
from scipy.spatial import ConvexHull as ScipyHull

from repro import workloads
from repro.algorithms.geometry.hull3d import (
    CGM3DConvexHull,
    convex_hull_3d,
    hull_vertices_3d,
)
from repro.bsp.runner import run_reference
from repro.core.simulator import simulate
from repro.params import MachineParams

MACHINE = MachineParams(p=1, M=1 << 18, D=2, B=32, b=32)


def scipy_faces(points):
    hull = ScipyHull(points)
    return sorted(tuple(sorted(s)) for s in hull.simplices.tolist())


def scipy_vertices(points):
    return sorted(ScipyHull(points).vertices.tolist())


class TestKernel:
    def test_tetrahedron(self):
        pts = [(0, 0, 0), (1, 0, 0), (0, 1, 0), (0, 0, 1)]
        faces = convex_hull_3d(pts)
        assert len(faces) == 4
        assert hull_vertices_3d(pts) == [0, 1, 2, 3]

    def test_interior_point_excluded(self):
        pts = [(0, 0, 0), (4, 0, 0), (0, 4, 0), (0, 0, 4), (0.5, 0.5, 0.5)]
        assert hull_vertices_3d(pts) == [0, 1, 2, 3]

    def test_cube(self):
        pts = [(x, y, z) for x in (0, 1) for y in (0, 1) for z in (0, 1)]
        faces = convex_hull_3d(pts)
        assert len(faces) == 12  # 6 square faces, triangulated
        assert hull_vertices_3d(pts) == list(range(8))

    @pytest.mark.parametrize("n,seed", [(10, 1), (50, 2), (150, 3)])
    def test_matches_scipy(self, n, seed):
        pts = workloads.random_points(n, seed=seed, dims=3)
        assert hull_vertices_3d(pts) == scipy_vertices(pts)
        assert convex_hull_3d(pts) == scipy_faces(pts)

    def test_euler_formula(self):
        pts = workloads.random_points(80, seed=4, dims=3)
        faces = convex_hull_3d(pts)
        verts = {i for f in faces for i in f}
        edges = {tuple(sorted(e)) for f in faces
                 for e in ((f[0], f[1]), (f[1], f[2]), (f[0], f[2]))}
        # V - E + F = 2 for a convex polytope.
        assert len(verts) - len(edges) + len(faces) == 2

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            convex_hull_3d([(0, 0, 0), (1, 1, 1), (2, 0, 0)])

    def test_coplanar_rejected(self):
        pts = [(float(i), float(j), 0.0) for i in range(3) for j in range(3)]
        with pytest.raises(ValueError, match="coplanar"):
            convex_hull_3d(pts)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            convex_hull_3d([(0, 0, 0)] * 3 + [(1, 1, 1), (2, 2, 3)])


class TestCGM3DHull:
    @pytest.mark.parametrize("n,v", [(24, 4), (80, 4), (60, 8)])
    def test_matches_scipy(self, n, v):
        pts = workloads.random_points(n, seed=n + v, dims=3)
        out, ledger = run_reference(CGM3DConvexHull(pts, v), v)
        vertices, faces = out[0]
        assert vertices == scipy_vertices(pts)
        assert faces == scipy_faces(pts)
        assert ledger.num_supersteps == CGM3DConvexHull.LAMBDA

    def test_points_on_sphere_all_vertices(self):
        import math
        import random

        rng = random.Random(5)
        pts = []
        for _ in range(30):
            theta = rng.uniform(0, 2 * math.pi)
            phi = math.acos(rng.uniform(-1, 1))
            pts.append(
                (
                    math.sin(phi) * math.cos(theta),
                    math.sin(phi) * math.sin(theta),
                    math.cos(phi),
                )
            )
        out, _ = run_reference(CGM3DConvexHull(pts, 4), 4)
        vertices, _faces = out[0]
        assert vertices == list(range(30))

    def test_em_sequential_matches(self):
        pts = workloads.random_points(48, seed=6, dims=3)
        out, report = simulate(CGM3DConvexHull(pts, 4), MACHINE, v=4)
        vertices, faces = out[0]
        assert vertices == scipy_vertices(pts)
        assert faces == scipy_faces(pts)
        assert report.io_ops > 0

    def test_em_parallel_matches(self):
        pts = workloads.random_points(40, seed=7, dims=3)
        machine = MachineParams(p=2, M=1 << 18, D=2, B=32, b=32)
        out, _ = simulate(CGM3DConvexHull(pts, 4), machine, v=4, k=2)
        vertices, faces = out[0]
        assert vertices == scipy_vertices(pts)
