"""Golden discipline of the vectorized record plane (DESIGN §10).

The vector mode must be *invisible to the model*: counted costs
(``io_ops``/``records_io``/``comm_packets``/``comp_ops``), the full report
summary with its ledgers and Lemma 2 ratios, and the outputs must be
byte-identical to the object plane across engines, backends, and storage
kinds.  These tests pin that matrix, the exact numpy <-> pure-Python kernel
equivalences the algorithm ports rely on, and the plumbing the plane rides
on (ndarray-aware blocks, batched track writes, coalesced frame
verification, ndarray fault corruption).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.algorithms._vec import (
    int64_array,
    owners_of_indices,
    sample_positions,
)
from repro.algorithms.graphs.listranking import _coin, _coin_arr
from repro.algorithms.permutation import CGMPermutation
from repro.algorithms.sorting import CGMSampleSort
from repro.bsp.collectives import (
    owner_of_index,
    partition_by_splitters,
    regular_samples,
)
from repro.bsp.program import AlgorithmError
from repro.core.simulator import simulate
from repro.emio.disk import Block
from repro.emio.faults import _corrupted_copy, block_checksum
from repro.emio.storage import FileStorage, verify_extents
from repro.outofcore import OutOfCoreSort, verify_digests
from repro.params import MachineParams

SEED = 3
N, V = 4096, 8

#: engine x backend x storage x fast-path corners of the golden matrix.
MATRIX = [
    dict(engine="sequential", backend="inline", storage="memory"),
    dict(engine="sequential", backend="inline", storage="file",
         fast_io=True, context_cache=True),
    dict(engine="parallel", backend="inline", storage="memory"),
    dict(engine="parallel", backend="inline", storage="file", fast_io=True),
    dict(engine="parallel", backend="process", storage="memory"),
    dict(engine="parallel", backend="process", storage="file", fast_io=True),
]


def _machine(cfg):
    p = 1 if cfg["engine"] == "sequential" else 2
    return MachineParams(p=p, M=1 << 20, D=4, B=32, b=64)


def _counted(outputs, report):
    """Everything the golden discipline pins, as one comparable image.

    ``repr`` rather than ``pickle.dumps``: pickle memoizes on object
    *identity*, so two value-identical output lists can pickle to different
    bytes depending on which backend materialized them.  ``repr`` of the
    plain-Python outputs is identity-insensitive and type-strict enough
    (``1`` vs ``np.int64(1)`` vs ``True`` all render differently).
    """
    return repr((outputs, report.io_ops, report.summary()))


class TestGoldenMatrix:
    @pytest.mark.parametrize("cfg", MATRIX, ids=lambda c: "-".join(
        str(x) for x in c.values()))
    def test_outofcore_sort_object_vs_vector(self, cfg):
        images = {}
        for mode in ("object", "vector"):
            alg = OutOfCoreSort(N, V, seed=5)
            outputs, report = simulate(
                alg, _machine(cfg), v=V, seed=SEED, records=mode, **cfg
            )
            verify_digests(outputs, 5, N, V)
            images[mode] = _counted(outputs, report)
        assert images["object"] == images["vector"]

    def test_matrix_configs_agree_on_outputs(self):
        outs = []
        for cfg in MATRIX:
            alg = OutOfCoreSort(N, V, seed=5)
            outputs, _ = simulate(
                alg, _machine(cfg), v=V, seed=SEED, records="vector", **cfg
            )
            outs.append(repr(outputs))
        assert len(set(outs)) == 1

    def test_sample_sort_golden_and_plain_int_outputs(self):
        rng = random.Random(17)
        data = [rng.randrange(1 << 30) for _ in range(N)]
        images = {}
        for mode in ("object", "vector"):
            outputs, report = simulate(
                CGMSampleSort(list(data), V), MachineParams(p=1, M=1 << 20,
                D=4, B=32, b=64), v=V, seed=SEED, records=mode,
            )
            images[mode] = _counted(outputs, report)
            flat = [x for out in outputs for x in out]
            assert flat == sorted(data)
            assert all(type(x) is int for x in flat)
        assert images["object"] == images["vector"]

    def test_permutation_golden(self):
        rng = random.Random(23)
        n = 1024
        vals = [rng.randrange(1 << 30) for _ in range(n)]
        perm = list(range(n))
        rng.shuffle(perm)
        images = {}
        for mode in ("object", "vector"):
            outputs, report = simulate(
                CGMPermutation(list(vals), list(perm), V),
                MachineParams(p=1, M=1 << 20, D=4, B=32, b=64),
                v=V, seed=SEED, records=mode,
            )
            images[mode] = _counted(outputs, report)
        assert images["object"] == images["vector"]
        outputs, _ = simulate(
            CGMPermutation(list(vals), list(perm), V),
            MachineParams(p=1, M=1 << 20, D=4, B=32, b=64),
            v=V, seed=SEED, records="vector",
        )
        expect = [None] * n
        for i in range(n):
            expect[perm[i]] = vals[i]
        assert [x for out in outputs for x in out] == expect


class TestEligibility:
    def test_custom_key_disables_vector_mode(self):
        alg = CGMSampleSort(list(range(100)), 4, key=lambda x: -x)
        assert alg.RECORD_MODES == ("object",)
        with pytest.raises(AlgorithmError):
            alg.set_record_mode("vector")

    def test_non_int_records_disable_vector_mode(self):
        assert int64_array(["a", "b"]) is None
        assert int64_array([1, 2.5]) is None
        assert int64_array([True, False]) is None  # bool is not int
        assert int64_array([1, 1 << 80]) is None  # overflow
        assert int64_array(np.zeros((2, 2), dtype="<i8")) is None
        assert int64_array(np.array([1.0])) is None

    def test_int64_array_accepts_ints_and_signed_ndarrays(self):
        assert int64_array([1, -2, 3]).dtype == np.dtype("<i8")
        arr = int64_array(np.array([5, 6], dtype=np.int32))
        assert arr is not None and arr.dtype.itemsize == 8

    def test_bytes_records_keep_the_legacy_plane(self):
        alg = OutOfCoreSort(256, 4, seed=0, reclen=16)
        assert alg.RECORD_MODES == ("object",)


class TestKernelEquivalence:
    def test_sample_positions_matches_regular_samples(self):
        for n in (0, 1, 2, 7, 40, 41, 64):
            for count in (0, 1, 3, 5, 8, 64):
                items = list(range(1000, 1000 + n))
                assert [items[i] for i in sample_positions(n, count)] == \
                    regular_samples(items, count)

    def test_owners_of_indices_matches_owner_of_index(self):
        for n in (1, 7, 16, 65):
            for v in (1, 2, 5, 16):
                idx = np.arange(n)
                assert owners_of_indices(idx, n, v).tolist() == [
                    owner_of_index(i, n, v) for i in range(n)
                ]

    def test_coin_arr_matches_coin(self):
        nodes = np.arange(500, dtype=np.int64)
        for rnd in (0, 1, 7):
            for seed in (0, 12345, 99991):
                assert _coin_arr(nodes, rnd, seed).tolist() == [
                    _coin(int(u), rnd, seed) for u in range(500)
                ]

    def test_searchsorted_matches_partition_by_splitters(self):
        rng = random.Random(5)
        items = sorted(rng.randrange(100) for _ in range(60))
        splitters = sorted(rng.randrange(100) for _ in range(7))
        arr = np.asarray(items, dtype="<i8")
        bounds = np.searchsorted(arr, np.asarray(splitters, "<i8"),
                                 side="left").tolist()
        parts = []
        prev = 0
        for hi in [*bounds, len(arr)]:
            parts.append(arr[prev:hi].tolist())
            prev = hi
        assert parts == partition_by_splitters(items, splitters)


class TestVectorPlumbing:
    def test_nrecords_counts_memoryview_and_ndarray(self):
        assert Block(records=b"x" * 17).nrecords() == 3
        assert Block(records=memoryview(b"x" * 17)).nrecords() == 3
        assert Block(records=memoryview(b"")).nrecords() == 0
        assert Block(records=np.arange(5)).nrecords() == 5
        assert Block(records=[1, 2]).nrecords() == 2

    def test_checksum_invariant_under_payload_flavour(self):
        arr = np.arange(8, dtype="<i8")
        base = block_checksum(Block(records=arr))
        assert block_checksum(Block(records=arr[::1].copy())) == base
        view = np.concatenate([arr, arr])[:8]
        assert block_checksum(Block(records=view)) == base
        raw = arr.tobytes()
        assert block_checksum(Block(records=memoryview(raw))) == \
            block_checksum(Block(records=raw))

    def test_corrupted_copy_changes_ndarray_payloads(self):
        for records in (np.arange(6, dtype="<i8"), np.empty(0, "<i8"),
                        memoryview(b"abcdefgh")):
            block = Block(records=records)
            bad = _corrupted_copy(block)
            assert block_checksum(bad) != block_checksum(block)

    def test_file_storage_roundtrips_ndarray_blocks(self, tmp_path):
        store = FileStorage(tmp_path / "d0.trk", B=16)
        try:
            structured = np.array([(1, 2), (3, 4)],
                                  dtype=[("k", "<i8"), ("v", "<i8")])
            blocks = [
                Block(records=np.arange(10, dtype="<i8"), dest=1, src=2,
                      msg=3, seq=4),
                Block(records=structured),
                Block(records=[1, "two", 3.0]),  # pickle fallback
                Block(records=np.arange(4, dtype="<i8")[::2].copy(),
                      dummy=True),
            ]
            for t, blk in enumerate(blocks):
                store.put(t, blk)
            for t, blk in enumerate(blocks):
                got = store.get(t)
                out = got.records
                if isinstance(blk.records, np.ndarray):
                    assert np.array_equal(out, blk.records)
                    assert out.dtype == blk.records.dtype
                else:
                    assert out == blk.records
                assert (got.dest, got.src, got.msg, got.seq, got.dummy) == (
                    blk.dest, blk.src, blk.msg, blk.seq, blk.dummy
                )
        finally:
            store.close()

    def test_put_many_coalesces_adjacent_slots(self, tmp_path, monkeypatch):
        store = FileStorage(tmp_path / "d1.trk", B=8)
        try:
            writes = []
            real = FileStorage._write_at

            def spy(self, offset, data):
                writes.append((offset, len(data)))
                return real(self, offset, data)

            monkeypatch.setattr(FileStorage, "_write_at", spy)
            items = [
                (t, Block(records=np.arange(8, dtype="<i8"))) for t in range(6)
            ]
            prev = store.put_many(items)
            assert prev == [False] * 6
            # Six fresh adjacent tracks: one coalesced pwrite.
            assert len(writes) == 1
            for t, blk in items:
                assert np.array_equal(store.get(t).records, blk.records)
            # Overwrites report presence; a disjoint pair stays two writes.
            writes.clear()
            prev = store.put_many([
                (0, Block(records=np.arange(8, dtype="<i8"))),
                (5, Block(records=np.arange(8, dtype="<i8"))),
            ])
            assert prev == [True, True]
            assert len(writes) == 2
        finally:
            store.close()

    def test_verify_extents_covers_the_snapshot(self, tmp_path):
        path = tmp_path / "d2.trk"
        store = FileStorage(path, B=8)
        try:
            store.put_many([
                (t, Block(records=np.arange(8, dtype="<i8") + t))
                for t in range(5)
            ])
            store.sync()
            snap = store.snapshot()
        finally:
            store.close()
        assert verify_extents(path, snap) == 5
