"""Tests for the workload generators (S12)."""

import pytest

from repro import workloads


class TestKeysAndPermutations:
    def test_uniform_keys_reproducible(self):
        assert workloads.uniform_keys(50, seed=7) == workloads.uniform_keys(50, seed=7)
        assert workloads.uniform_keys(50, seed=7) != workloads.uniform_keys(50, seed=8)

    def test_random_permutation_valid(self):
        p = workloads.random_permutation(100, seed=1)
        assert sorted(p) == list(range(100))

    def test_reversing_permutation(self):
        assert workloads.reversing_permutation(4) == [3, 2, 1, 0]

    def test_bit_reversal_is_involution(self):
        p = workloads.bit_reversal_permutation(5)
        assert sorted(p) == list(range(32))
        assert all(p[p[i]] == i for i in range(32))

    def test_matrix_entries_distinct(self):
        e = workloads.matrix_entries(6, 7, seed=2)
        assert len(set(e)) == 42


class TestGeometry:
    def test_segments_noncrossing_are_horizontal_distinct(self):
        segs = workloads.random_segments(30, seed=3)
        assert all(y1 == y2 for _x1, y1, _x2, y2 in segs)
        assert len({s[1] for s in segs}) == 30
        assert all(x1 < x2 for x1, _y1, x2, _y2 in segs)

    def test_general_segments(self):
        segs = workloads.random_segments(20, seed=4, nonintersecting=False)
        assert all(x1 <= x2 for x1, _y1, x2, _y2 in segs)

    def test_points_distinct_coordinates(self):
        pts = workloads.random_points(40, seed=5, dims=3)
        for d in range(3):
            assert len({p[d] for p in pts}) == 40

    def test_rectangles_wellformed(self):
        rects = workloads.random_rectangles(25, seed=6)
        assert all(x1 < x2 and y1 < y2 for x1, y1, x2, y2 in rects)


class TestGraphs:
    def test_linked_list_visits_all(self):
        succ = workloads.random_linked_list(50, seed=7)
        tails = [i for i in range(50) if succ[i] == i]
        assert len(tails) == 1
        head = (set(range(50)) - set(succ)).pop()
        seen, cur = set(), head
        while cur not in seen:
            seen.add(cur)
            cur = succ[cur]
        assert len(seen) == 50

    def test_tree_edges_form_tree(self):
        edges = workloads.random_tree_edges(30, seed=8)
        assert len(edges) == 29
        parent = {}
        for p, c in edges:
            assert c not in parent
            assert p < c  # parents precede children by construction
            parent[c] = p

    def test_expression_tree_shape(self):
        edges, ops, leaves = workloads.random_expression_tree(10, seed=9)
        assert len(leaves) == 10
        assert len(ops) == 9  # internal nodes of a full binary tree
        assert len(edges) == 18
        assert set(ops.values()) <= {"+", "*"}
        children = {}
        for p, c in edges:
            children.setdefault(p, []).append(c)
        assert all(len(cs) == 2 for cs in children.values())
        assert set(children) == set(ops)

    def test_graph_edges_distinct_no_loops(self):
        edges = workloads.random_graph_edges(20, 40, seed=10)
        assert len(edges) == 40
        assert len(set(edges)) == 40
        assert all(a != b for a, b in edges)

    def test_graph_edges_connected_flag(self):
        import networkx as nx

        edges = workloads.random_graph_edges(25, 30, seed=11, connected=True)
        g = nx.Graph(edges)
        g.add_nodes_from(range(25))
        assert nx.is_connected(g)

    def test_forest_component_ground_truth(self):
        edges, comp = workloads.random_forest_edges(30, 4, seed=12)
        assert len(set(comp)) == 4
        assert len(edges) == 26  # n - ncomponents
        for a, b in edges:
            assert comp[a] == comp[b]
