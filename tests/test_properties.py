"""Property-based tests (hypothesis) for the invariants of DESIGN.md §5."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bsp.message import Message, blocks_to_messages, message_to_blocks
from repro.bsp.collectives import (
    owner_of_index,
    partition_by_splitters,
    regular_samples,
    share_bounds,
)
from repro.bsp.runner import run_reference
from repro.core.routing import simulate_routing
from repro.core.seqsim import SequentialEMSimulation
from repro.emio.disk import Block
from repro.emio.diskarray import DiskArray
from repro.emio.layout import (
    RegionAllocator,
    StripedRegion,
    blocks_to_object,
    pickle_to_blocks,
)
from repro.emio.linked import LinkedBuckets
from repro.params import BSPParams, MachineParams, SimulationParams

from .helpers import AllToAllExchange, MultiRoundAccumulate

slow = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# -- I2: standard consecutive format for arbitrary slot-size vectors -------------


@given(
    sizes=st.lists(st.integers(0, 9), min_size=0, max_size=20),
    D=st.integers(1, 8),
)
@slow
def test_striped_region_always_standard_consecutive(sizes, D):
    array = DiskArray(D, 4)
    region = StripedRegion(array, RegionAllocator(array), sizes, "prop")
    region.check_standard_consecutive()


@given(
    sizes=st.lists(st.integers(1, 6), min_size=1, max_size=10),
    D=st.integers(1, 4),
    data=st.data(),
)
@slow
def test_striped_region_roundtrip(sizes, D, data):
    array = DiskArray(D, 4)
    region = StripedRegion(array, RegionAllocator(array), sizes, "prop")
    payloads = {}
    for slot, size in enumerate(sizes):
        blocks = [Block(records=[slot, i]) for i in range(size)]
        payloads[slot] = [[slot, i] for i in range(size)]
        region.write_slot(slot, blocks)
    order = data.draw(st.permutations(range(len(sizes))))
    for slot in order:
        got = [b.records for b in region.read_slot(slot) if b is not None]
        assert got == payloads[slot]


# -- messages: block/packet round trips -------------------------------------------


@given(
    payload=st.lists(st.integers(), max_size=40),
    B=st.integers(1, 9),
)
@slow
def test_message_block_roundtrip(payload, B):
    msg = Message(src=3, dest=5, payload=payload)
    blocks = message_to_blocks(msg, B, msg_id=7)
    assert all(b.nrecords() <= B for b in blocks)
    back = blocks_to_messages(blocks)
    assert len(back) == 1
    assert back[0].payload == payload and back[0].src == 3 and back[0].dest == 5


@given(
    payloads=st.lists(st.lists(st.integers(), max_size=10), min_size=1, max_size=6),
    B=st.integers(1, 5),
    data=st.data(),
)
@slow
def test_interleaved_blocks_reassemble(payloads, B, data):
    blocks = []
    for i, payload in enumerate(payloads):
        blocks.extend(
            message_to_blocks(Message(src=i, dest=0, payload=payload), B, msg_id=i)
        )
    shuffled = data.draw(st.permutations(blocks))
    back = blocks_to_messages(shuffled)
    assert sorted(m.src for m in back) == list(range(len(payloads)))
    for m in back:
        assert m.payload == payloads[m.src]


# -- pickle/context round trip ------------------------------------------------------


@given(
    obj=st.recursive(
        st.none() | st.integers() | st.floats(allow_nan=False) | st.text(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=5), children, max_size=4),
        max_leaves=20,
    ),
    B=st.integers(1, 16),
)
@slow
def test_context_pickle_roundtrip(obj, B):
    assert blocks_to_object(pickle_to_blocks(obj, B)) == obj


# -- collectives ----------------------------------------------------------------------


@given(n=st.integers(0, 500), v=st.integers(1, 32))
@slow
def test_share_bounds_partition(n, v):
    covered = []
    for pid in range(v):
        lo, hi = share_bounds(n, v, pid)
        assert 0 <= lo <= hi <= n
        covered.extend(range(lo, hi))
    assert covered == list(range(n))


@given(n=st.integers(1, 500), v=st.integers(1, 32), data=st.data())
@slow
def test_owner_of_index_consistent(n, v, data):
    i = data.draw(st.integers(0, n - 1))
    owner = owner_of_index(i, n, v)
    lo, hi = share_bounds(n, v, owner)
    assert lo <= i < hi


@given(
    items=st.lists(st.integers(-50, 50), max_size=60),
    splitters=st.lists(st.integers(-50, 50), max_size=8),
)
@slow
def test_partition_by_splitters_preserves_and_orders(items, splitters):
    items, splitters = sorted(items), sorted(splitters)
    parts = partition_by_splitters(items, splitters)
    assert [x for part in parts for x in part] == items
    for j, part in enumerate(parts):
        for x in part:
            if j > 0:
                assert x >= splitters[j - 1]
            if j < len(splitters):
                assert x < splitters[j]


@given(items=st.lists(st.integers(), min_size=0, max_size=60), c=st.integers(0, 12))
@slow
def test_regular_samples_sorted_subset(items, c):
    items = sorted(items)
    samples = regular_samples(items, c)
    assert samples == sorted(samples)
    assert len(samples) <= max(c, 0)
    for s in samples:
        assert s in items or not items


# -- I6/I7: bucket store and reorganization, arbitrary traffic ----------------------


@given(
    dests=st.lists(st.integers(0, 15), max_size=120),
    D=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
@slow
def test_routing_conserves_blocks(dests, D, seed):
    v = 16
    array = DiskArray(D, 4)
    alloc = RegionAllocator(array)
    store = LinkedBuckets(
        array, alloc, D, lambda d: d * D // v, random.Random(seed)
    )
    blocks = [Block(records=[i], dest=d, src=0, msg=i) for i, d in enumerate(dests)]
    store.append_blocks(blocks)
    region, stats = simulate_routing(array, alloc, store, v, lambda d: d)
    assert stats.total_blocks == len(dests)
    delivered = []
    for slot in range(v):
        for b in region.read_slot(slot):
            if b is not None:
                assert b.dest == slot
                delivered.append(b.records[0])
    assert sorted(delivered) == sorted(range(len(dests)))


# -- I3: transparency under random machine parameters --------------------------------


@given(
    D=st.integers(1, 5),
    B=st.sampled_from([4, 16, 64]),
    k=st.sampled_from([1, 2, 4]),
    seed=st.integers(0, 1000),
)
@settings(max_examples=15, deadline=None)
def test_seqsim_transparency_random_params(D, B, k, seed):
    v = 8
    alg = MultiRoundAccumulate(rounds=3)
    ref, _ = run_reference(MultiRoundAccumulate(rounds=3), v)
    params = SimulationParams(
        machine=MachineParams(p=1, M=max(alg.context_size() * k, D * B), D=D, B=B, b=B),
        bsp=BSPParams(v=v, mu=alg.context_size(), gamma=alg.comm_bound()),
        k=k,
    )
    out, _ = SequentialEMSimulation(
        MultiRoundAccumulate(rounds=3), params, seed=seed
    ).run()
    assert out == ref


# -- I8: ledger consistency ------------------------------------------------------------


@given(seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_ledger_total_is_sum_of_components(seed):
    v = 8
    alg = AllToAllExchange()
    params = SimulationParams(
        machine=MachineParams(p=1, M=alg.context_size() * 2, D=2, B=16, b=16),
        bsp=BSPParams(v=v, mu=alg.context_size(), gamma=alg.comm_bound()),
        k=2,
    )
    _, report = SequentialEMSimulation(AllToAllExchange(), params, seed=seed).run()
    led = report.ledger
    m = led.machine
    total = sum(
        s.comp_ops + s.comm_time(m) + s.io_time(m) + m.L * s.syncs
        for s in led.supersteps
    )
    assert led.total_time() == total
    assert led.total_io_ops == report.io_ops
