"""Observability layer tests: spans, metrics, worker merge, exporters, golden
non-interference.

The load-bearing invariant is the last one: ``simulate(..., observer=...)``
may change *nothing* the model counts — outputs, ledgers, routing stats,
reports — on any engine, any backend, fast or reference data plane, and it
must not force the arrays off the fast data plane (unlike ``IOTrace.attach``).
"""

import dataclasses
import json

import pytest

from repro.algorithms.sorting import CGMSampleSort
from repro.core.checkpoint import freeze
from repro.core.parsim import ParallelEMSimulation
from repro.core.seqsim import SequentialEMSimulation
from repro.core.simulator import build_params, simulate
from repro.core.stats import FaultReport, PhaseBreakdown
from repro.obs import (
    NULL_OBSERVER,
    Collector,
    MetricsRegistry,
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
    write_jsonl,
)
from repro.params import MachineParams
from repro.workloads import uniform_keys


def make_sim(engine, p=2, n=384, v=8, seed=0, **kwargs):
    alg = CGMSampleSort(uniform_keys(n, seed=7), v=v)
    machine = MachineParams(
        p=1 if engine == "sequential" else p, M=1 << 18, D=4, B=16, b=32
    )
    params = build_params(alg, machine, v=v)
    cls = SequentialEMSimulation if engine == "sequential" else ParallelEMSimulation
    return cls(alg, params, seed=seed, **kwargs)


# -- metrics registry ---------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram(self):
        mx = MetricsRegistry()
        mx.counter("c").inc()
        mx.counter("c").inc(4)
        mx.gauge("g").set(2.5)
        for v in (1, 3, 8):
            mx.histogram("h").record(v)
        snap = mx.snapshot()
        assert snap["c"] == {"type": "counter", "value": 5}
        assert snap["g"] == {"type": "gauge", "value": 2.5}
        h = snap["h"]
        assert h["count"] == 3 and h["sum"] == 12 and h["min"] == 1 and h["max"] == 8
        assert sum(h["buckets"].values()) == 3

    def test_histogram_buckets_are_log2(self):
        mx = MetricsRegistry()
        h = mx.histogram("h")
        for v in (0, 0.5, 1, 2, 3, 4):
            h.record(v)
        # 0 and 0.5 land in bucket 0; 1 in [1,2); 2,3 in [2,4); 4 in [4,8).
        assert h.buckets == {0: 2, 1: 1, 2: 2, 3: 1}

    def test_kind_mismatch_raises(self):
        mx = MetricsRegistry()
        mx.counter("x")
        with pytest.raises(TypeError, match="is a Counter"):
            mx.gauge("x")

    def test_merge_snapshot_accumulates(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        a.histogram("h").record(5)
        b.counter("c").inc(3)
        b.histogram("h").record(9)
        b.gauge("g").set(7)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["c"]["value"] == 5
        assert snap["g"]["value"] == 7
        assert snap["h"]["count"] == 2 and snap["h"]["max"] == 9

    def test_merge_snapshot_prefix(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("c").inc(1)
        a.merge_snapshot(b.snapshot(), prefix="p3/")
        assert a.snapshot() == {"p3/c": {"type": "counter", "value": 1}}

    def test_null_observer_is_inert_and_shared(self):
        assert NULL_OBSERVER.enabled is False
        sp = NULL_OBSERVER.span("anything", x=1)
        with sp as s:
            s.add(io_ops=3)
        NULL_OBSERVER.sample("disk0/ops", 5)
        NULL_OBSERVER.metrics.counter("c").inc()
        NULL_OBSERVER.metrics.histogram("h").record(1)
        # One shared instrument, no state anywhere.
        assert NULL_OBSERVER.metrics.counter("a") is NULL_OBSERVER.metrics.gauge("b")
        assert NULL_OBSERVER.span("x") is NULL_OBSERVER.span("y")


# -- span collection ----------------------------------------------------------------


class TestSpans:
    def test_nesting_records_parents(self):
        c = Collector()
        with c.span("outer", step=0):
            with c.span("inner") as sp:
                sp.add(io_ops=7)
            with c.span("inner2"):
                pass
        assert [s.name for s in c.spans] == ["outer", "inner", "inner2"]
        assert [s.parent for s in c.spans] == [None, 0, 0]
        assert c.spans[1].attrs == {"io_ops": 7}
        assert all(s.t1 is not None and s.t1 >= s.t0 for s in c.spans)
        assert c.children_of(0) == [1, 2]

    def test_exception_unwinds_stack(self):
        c = Collector()
        with pytest.raises(RuntimeError):
            with c.span("outer"):
                with c.span("mid"):
                    c.span("abandoned")  # opened, never exited
                    raise RuntimeError("boom")
        # The raise closed outer; the stack is empty for the next span.
        assert c._stack == []
        with c.span("after"):
            pass
        assert c.spans[-1].parent is None

    def test_drain_resets_and_ingest_remaps(self):
        w = Collector(proc=1)
        with w.span("superstep", step=0):
            with w.span("compute"):
                pass
        w.sample("disk0/ops", 4)
        w.metrics.counter("c").inc(2)
        payload = w.drain()
        assert w.spans == [] and w.samples == [] and len(w.metrics) == 0

        eng = Collector()
        with eng.span("engine_root"):
            pass
        eng.ingest(payload)
        assert [s.name for s in eng.spans] == ["engine_root", "superstep", "compute"]
        assert eng.spans[2].parent == 1  # remapped past the engine's span
        assert eng.spans[1].proc == 1 and eng.spans[2].proc == 1
        assert eng.samples == [(payload["samples"][0][0], "p1/disk0/ops", 4)]
        assert eng.metrics.snapshot()["p1/c"]["value"] == 2

    def test_total_time_and_by_name(self):
        c = Collector()
        for _ in range(3):
            with c.span("phase"):
                pass
        assert len(c.by_name("phase")) == 3
        assert c.total_time("phase") >= 0.0


# -- report key completeness (satellite) --------------------------------------------


class TestReportKeys:
    def test_fault_report_summary_covers_every_field(self):
        """Every counter field of FaultReport feeds summary() — a new field
        that silently never reaches the summary is a reporting bug."""
        fr = FaultReport(
            **{
                f.name: (9 if f.name != "resumed_from_step" else 3)
                for f in dataclasses.fields(FaultReport)
            }
        )
        s = fr.summary()
        zero = FaultReport().summary()
        assert set(s) == set(zero)
        # Flipping every field to a nonzero value must change every summary
        # entry (resumed_from_step is deliberately not summarized: it is an
        # identity, not a tally).
        changed = {k for k in s if s[k] != zero[k]}
        assert changed == set(s)

    def test_phase_breakdown_total_covers_every_field(self):
        fields = [f.name for f in dataclasses.fields(PhaseBreakdown)]
        assert len(fields) == 5
        for name in fields:
            pb = PhaseBreakdown(**{name: 11})
            assert pb.total == 11, f"phase field {name} missing from total"
        pb = PhaseBreakdown(**{name: 1 for name in fields})
        assert pb.total == len(fields)


# -- golden non-interference --------------------------------------------------------


def golden(sim):
    outputs, report = sim.run()
    return freeze(
        {
            "outputs": outputs,
            "ledger": report.ledger.summary(),
            "supersteps": [
                (repr(s.phases), repr(s.routing), s.comm_packets, s.message_blocks)
                for s in report.supersteps
            ],
            "init_io": report.init_io_ops,
            "output_io": report.output_io_ops,
            "tracks": report.disk_space_tracks,
        }
    )


class TestGoldenNonInterference:
    @pytest.mark.parametrize("engine", ["sequential", "parallel"])
    @pytest.mark.parametrize("fast", [False, True])
    def test_observer_changes_nothing(self, engine, fast):
        kw = {"context_cache": fast, "fast_io": fast}
        ref = golden(make_sim(engine, **kw))
        obs = Collector()
        watched = golden(make_sim(engine, observer=obs, **kw))
        assert watched == ref  # byte-identical frozen blobs
        assert obs.spans and all(s.t1 is not None for s in obs.spans)

    def test_observer_changes_nothing_process_backend(self):
        ref = golden(make_sim("parallel"))
        obs = Collector()
        watched = golden(make_sim("parallel", backend="process", observer=obs))
        assert watched == ref

    def test_observer_keeps_fast_data_plane(self):
        """Unlike IOTrace.attach, observing must not force the physical path."""
        sim = make_sim("sequential", observer=Collector(), fast_io=True)
        assert sim.array.fast_data_plane is True
        sim.run()
        assert sim.array.fast_data_plane is True

    def test_simulate_front_door(self):
        alg = lambda: CGMSampleSort(uniform_keys(256, seed=7), v=4)  # noqa: E731
        machine = MachineParams(p=1, M=1 << 18, D=2, B=16, b=32)
        out_ref, rep_ref = simulate(alg(), machine, v=4)
        obs = Collector()
        out, rep = simulate(alg(), machine, v=4, observer=obs)
        assert out == out_ref
        assert freeze(rep.ledger.summary()) == freeze(rep_ref.ledger.summary())
        assert obs.by_name("superstep")


# -- worker merge -------------------------------------------------------------------


class TestWorkerMerge:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_inline_merge_per_processor(self, p):
        obs = Collector()
        sim = make_sim("parallel", p=p, observer=obs)
        sim.run()
        procs = {s.proc for s in obs.spans}
        assert procs == {None, *range(p)}
        # Parent links stay inside the owning processor's subtree.
        for s in obs.spans:
            if s.parent is not None:
                parent = obs.spans[s.parent]
                assert parent.proc == s.proc
                assert parent.t0 <= s.t0
        # Per-worker metrics arrive prefixed.
        snap = obs.metrics.snapshot()
        for i in range(p):
            assert f"p{i}/ctx_cache/misses" in snap
        assert "comm_packets" in snap

    def test_process_merge_matches_inline_shape(self):
        shapes = []
        for backend in ("inline", "process"):
            obs = Collector()
            make_sim("parallel", p=2, observer=obs, backend=backend).run()
            shapes.append(
                sorted((s.name, -1 if s.proc is None else s.proc) for s in obs.spans)
            )
        assert shapes[0] == shapes[1]

    def test_process_backend_counts_pipe_bytes(self):
        obs = Collector()
        sim = make_sim("parallel", p=2, observer=obs, backend="process")
        sim.run()
        snap = obs.metrics.snapshot()
        assert snap["backend/tx_bytes"]["value"] > 0
        assert snap["backend/rx_bytes"]["value"] > 0


# -- exporters ----------------------------------------------------------------------


def run_observed(tmp_path=None, engine="sequential", **kw):
    obs = Collector()
    make_sim(engine, observer=obs, **kw).run()
    return obs


class TestJSONL:
    def test_round_trip(self, tmp_path):
        obs = run_observed()
        path = str(tmp_path / "run.jsonl")
        n = write_jsonl(obs, path)
        view = read_jsonl(path)
        assert n == 1 + len(view["spans"]) + len(view["samples"]) + len(
            view["metrics"]
        )
        assert view["meta"]["nspans"] == len(obs.spans)
        assert [s["name"] for s in view["spans"]] == [s.name for s in obs.spans]
        assert [s["id"] for s in view["spans"]] == list(range(len(obs.spans)))
        by_id = {s["id"]: s for s in view["spans"]}
        for s in view["spans"]:
            if s["parent"] is not None:
                assert s["parent"] in by_id
        names = {m for m in view["metrics"]}
        assert "superstep_io_ops" in names

    def test_truncation_detected(self, tmp_path):
        obs = run_observed()
        path = str(tmp_path / "run.jsonl")
        write_jsonl(obs, path)
        lines = open(path).read().splitlines()
        open(path, "w").write("\n".join(lines[:-4]) + "\n")
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_version_mismatch_detected(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        open(path, "w").write(json.dumps({"type": "meta", "version": 99}) + "\n")
        with pytest.raises(ValueError, match="version"):
            read_jsonl(path)


class TestChromeTrace:
    def test_valid_and_loadable(self, tmp_path):
        obs = run_observed()
        path = str(tmp_path / "trace.json")
        n = write_chrome_trace(obs, path)
        assert validate_trace_file(path) == n
        trace = json.load(open(path))
        phases = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        for want in ("superstep", "fetch_context", "compute", "reorganize"):
            assert want in phases

    def test_p2_process_backend_trace(self, tmp_path):
        """The acceptance-criteria trace: p=2 process-backend sort with one
        track per real processor plus the engine track."""
        obs = run_observed(engine="parallel", backend="process")
        path = str(tmp_path / "trace.json")
        write_chrome_trace(obs, path)
        trace = json.load(open(path))
        validate_chrome_trace(trace)
        tracks = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert tracks == {"engine", "proc 0", "proc 1"}
        # Per-phase spans exist on the worker tracks, and per-disk counter
        # tracks exist for both processors.
        worker_x = {
            e["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "X" and e["tid"] > 0
        }
        assert {"fetch_context", "compute", "reorganize"} <= worker_x
        counters = {e["name"] for e in trace["traceEvents"] if e["ph"] == "C"}
        assert any(c.startswith("p0/disk") for c in counters)
        assert any(c.startswith("p1/disk") for c in counters)

    def test_timestamps_normalized(self):
        obs = run_observed()
        trace = chrome_trace(obs)
        xs = [e for e in trace["traceEvents"] if e["ph"] in ("X", "C")]
        assert xs and min(e["ts"] for e in xs) == 0.0
        assert all(e["ts"] >= 0 for e in xs)

    def test_open_span_closed_at_trace_end(self):
        c = Collector()
        c.span("never_closed")
        with c.span("done"):
            pass
        trace = chrome_trace(c)
        validate_chrome_trace(trace)
        ev = next(e for e in trace["traceEvents"] if e["name"] == "never_closed")
        assert ev["dur"] >= 0

    def test_validator_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace({"traceEvents": [{"ph": "Q", "name": "x", "pid": 0}]})
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "ts": 0.0}]}
            )


# -- CLI ----------------------------------------------------------------------------


class TestCLI:
    def test_trace_flags_end_to_end(self, tmp_path, capsys):
        from repro.__main__ import main

        trace_path = str(tmp_path / "cli.json")
        jsonl_path = str(tmp_path / "cli.jsonl")
        rc = main(
            [
                "sort", "--n", "256", "--v", "4",
                "--trace-out", trace_path,
                "--jsonl-out", jsonl_path,
                "--metrics",
            ]
        )
        assert rc == 0
        assert validate_trace_file(trace_path) > 0
        assert read_jsonl(jsonl_path)["metrics"]
        out = capsys.readouterr().out
        assert "metrics:" in out and "superstep_io_ops" in out

    def test_no_flags_no_collector(self, capsys):
        from repro.__main__ import main

        assert main(["sort", "--n", "256", "--v", "4"]) == 0
        assert "metrics:" not in capsys.readouterr().out
