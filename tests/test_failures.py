"""Failure-injection tests: the simulation must fail loudly, never silently.

Violations of the model's declared bounds (context size mu, communication
bound gamma, invalid destinations, runaway algorithms) are contract
breaches; these tests pin the error behaviour of every enforcement point.
"""

import pytest

from repro.bsp.program import AlgorithmError, BSPAlgorithm, VPContext
from repro.bsp.runner import run_reference
from repro.core.parsim import ParallelEMSimulation
from repro.core.seqsim import SequentialEMSimulation
from repro.core.simulator import build_params, simulate
from repro.emio.disk import DiskError
from repro.params import MachineParams


class LyingContext(BSPAlgorithm):
    """Declares a tiny context, then grows its state beyond it."""

    def context_size(self) -> int:
        return 32

    def comm_bound(self) -> int:
        return 8

    def initial_state(self, pid, nprocs):
        return {"data": []}

    def superstep(self, ctx: VPContext):
        ctx.state["data"] = list(range(10_000))  # far beyond 32 records
        ctx.vote_halt()

    def output(self, pid, state):
        return None


class LyingComm(BSPAlgorithm):
    """Declares gamma=4 records, then sends 1000."""

    def context_size(self) -> int:
        return 256

    def comm_bound(self) -> int:
        return 4

    def initial_state(self, pid, nprocs):
        return {}

    def superstep(self, ctx: VPContext):
        if ctx.step == 0:
            ctx.send((ctx.pid + 1) % ctx.nprocs, list(range(1000)))
        else:
            ctx.vote_halt()

    def output(self, pid, state):
        return None


class FloodsOneReceiver(BSPAlgorithm):
    """Every vp sends gamma records to vp 0: the *receive* side bursts."""

    def context_size(self) -> int:
        return 4096

    def comm_bound(self) -> int:
        return 16

    def initial_state(self, pid, nprocs):
        return {}

    def superstep(self, ctx: VPContext):
        if ctx.step == 0:
            ctx.send(0, list(range(16)))  # within the per-sender bound
        else:
            ctx.vote_halt()

    def output(self, pid, state):
        return None


class BadDestination(BSPAlgorithm):
    def context_size(self) -> int:
        return 256

    def comm_bound(self) -> int:
        return 8

    def initial_state(self, pid, nprocs):
        return {}

    def superstep(self, ctx: VPContext):
        ctx.send(ctx.nprocs + 5, [1])

    def output(self, pid, state):
        return None


class NeverHalts(BSPAlgorithm):
    MAX_SUPERSTEPS = 25

    def context_size(self) -> int:
        return 256

    def comm_bound(self) -> int:
        return 8

    def initial_state(self, pid, nprocs):
        return {}

    def superstep(self, ctx: VPContext):
        ctx.send(ctx.pid, [ctx.step])  # keeps itself busy forever

    def output(self, pid, state):
        return None


MACHINE = MachineParams(p=1, M=1 << 13, D=2, B=16, b=16)


def params_for(alg, v=4, p=1):
    machine = MachineParams(p=p, M=max(2 * alg.context_size(), 64), D=2, B=16, b=16)
    return build_params(alg, machine, v=v, k=2)


class TestContextOverflow:
    def test_sequential_engine_rejects(self):
        with pytest.raises(DiskError, match="context"):
            SequentialEMSimulation(LyingContext(), params_for(LyingContext())).run()

    def test_parallel_engine_rejects(self):
        with pytest.raises(DiskError, match="context"):
            ParallelEMSimulation(
                LyingContext(), params_for(LyingContext(), p=2)
            ).run()


class TestGammaViolation:
    def test_send_side_rejected_in_reference(self):
        with pytest.raises(AlgorithmError, match="exceeding"):
            run_reference(LyingComm(), 4)

    def test_send_side_rejected_in_em(self):
        with pytest.raises(AlgorithmError, match="exceeding"):
            SequentialEMSimulation(LyingComm(), params_for(LyingComm())).run()

    def test_receive_side_rejected(self):
        # 8 senders x 16 records = 128 > gamma = 16 at vp 0.
        with pytest.raises(AlgorithmError, match="received"):
            SequentialEMSimulation(
                FloodsOneReceiver(), params_for(FloodsOneReceiver(), v=8)
            ).run()

    def test_enforcement_can_be_disabled(self):
        out, _ = SequentialEMSimulation(
            FloodsOneReceiver(),
            params_for(FloodsOneReceiver(), v=8),
            enforce_gamma=False,
        ).run()
        assert out == [None] * 8


class TestBadDestination:
    def test_rejected_everywhere(self):
        with pytest.raises(AlgorithmError, match="invalid destination"):
            run_reference(BadDestination(), 4)
        with pytest.raises(AlgorithmError, match="invalid destination"):
            SequentialEMSimulation(
                BadDestination(), params_for(BadDestination())
            ).run()


class TestNonHalting:
    def test_reference_guard(self):
        with pytest.raises(AlgorithmError, match="MAX_SUPERSTEPS"):
            run_reference(NeverHalts(), 4)

    def test_sequential_guard(self):
        with pytest.raises(AlgorithmError, match="MAX_SUPERSTEPS"):
            SequentialEMSimulation(NeverHalts(), params_for(NeverHalts())).run()

    def test_parallel_guard(self):
        with pytest.raises(AlgorithmError, match="MAX_SUPERSTEPS"):
            ParallelEMSimulation(
                NeverHalts(), params_for(NeverHalts(), p=2)
            ).run()


class TestSimulatorFacade:
    def test_engine_auto_selects(self):
        from tests.helpers import NoCommunication

        machine = MachineParams(p=1, M=1 << 12, D=2, B=16, b=16)
        out, rep = simulate(NoCommunication(), machine, v=4)
        assert out == [1, 3, 5, 7]
        machine2 = MachineParams(p=2, M=1 << 12, D=2, B=16, b=16)
        out2, _ = simulate(NoCommunication(), machine2, v=4, k=2)
        assert out2 == out

    def test_engine_forced_parallel_on_p1(self):
        from tests.helpers import AllToAllExchange

        machine = MachineParams(p=1, M=1 << 13, D=2, B=16, b=16)
        ref, _ = run_reference(AllToAllExchange(), 4)
        out, _ = simulate(
            AllToAllExchange(), machine, v=4, engine="parallel", k=2
        )
        assert out == ref

    def test_unknown_engine_rejected(self):
        from tests.helpers import NoCommunication

        machine = MachineParams(p=1, M=1 << 12, D=2, B=16, b=16)
        with pytest.raises(ValueError, match="unknown engine"):
            simulate(NoCommunication(), machine, v=4, engine="quantum")

    def test_strict_mode_propagates(self):
        from repro.params import ParameterError
        from tests.helpers import NoCommunication

        machine = MachineParams(p=1, M=1 << 12, D=8, B=16, b=16)
        with pytest.raises(ParameterError, match="slackness"):
            simulate(NoCommunication(), machine, v=4, strict=True)


class TestFaultPaths:
    """Fault handling is part of the failure contract: transient faults are
    masked, fatal faults either recover through a checkpoint or abort loudly
    — and a detected corruption never degrades into silently wrong output."""

    MACHINE = MachineParams(p=1, M=1 << 13, D=4, B=16, b=16)

    def _baseline(self):
        from tests.helpers import AllToAllExchange

        out, _ = simulate(AllToAllExchange(), self.MACHINE, v=4, seed=1)
        return out

    def test_transient_fault_recovered_by_retry(self):
        from repro.emio.faults import FaultPlan
        from tests.helpers import AllToAllExchange

        plan = FaultPlan(seed=0, read_error_rate=0.1, write_error_rate=0.1)
        out, rep = simulate(
            AllToAllExchange(), self.MACHINE, v=4, seed=1, faults=plan
        )
        assert out == self._baseline()
        assert rep.faults.retry_ops > 0
        assert rep.faults.recoveries == 0  # retries sufficed, no rollback

    def test_permanent_fault_recovered_by_checkpoint(self):
        from repro.emio.faults import FaultPlan
        from tests.helpers import AllToAllExchange

        plan = FaultPlan(seed=0, dead_disk=0, dead_after=25)
        out, rep = simulate(
            AllToAllExchange(), self.MACHINE, v=4, seed=1,
            faults=plan, checkpoint=True,
        )
        assert out == self._baseline()
        assert rep.faults.disks_died == 1
        assert rep.faults.recoveries >= 1

    def test_permanent_fault_without_checkpoint_aborts(self):
        from repro.core.checkpoint import SimulationAborted
        from repro.emio.faults import FaultPlan
        from tests.helpers import AllToAllExchange

        plan = FaultPlan(seed=0, dead_disk=0, dead_after=25)
        with pytest.raises(SimulationAborted):
            simulate(AllToAllExchange(), self.MACHINE, v=4, seed=1, faults=plan)

    def test_corruption_raises_never_wrong_output(self):
        """Every read of a corrupted block either retries into good data or
        fails loudly; under heavy corruption the run may abort, but whenever
        it completes the outputs are exact."""
        from repro.core.checkpoint import SimulationAborted
        from repro.emio.faults import FaultPlan
        from tests.helpers import AllToAllExchange

        baseline = self._baseline()
        for seed in range(3):
            plan = FaultPlan(seed=seed, corruption_rate=0.2)
            try:
                out, rep = simulate(
                    AllToAllExchange(), self.MACHINE, v=4, seed=1,
                    faults=plan, checkpoint=True,
                )
            except SimulationAborted:
                continue  # loud failure is acceptable; silence is not
            assert out == baseline
            assert (
                rep.faults.checksum_errors == rep.faults.corruptions_injected
            )  # every injected corruption was detected
