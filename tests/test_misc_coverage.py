"""Coverage for the remaining small surfaces: collectives, trace windows,
strict-mode reporting, Sibeyn cells accounting, non-numeric records."""

import pytest

from repro import workloads
from repro.algorithms import CGMSampleSort
from repro.bsp.collectives import merge_sorted, regular_samples
from repro.bsp.runner import run_reference
from repro.core.simulator import simulate
from repro.emio.disk import Block
from repro.emio.diskarray import DiskArray
from repro.emio.trace import IOTrace
from repro.params import BSPParams, MachineParams, SimulationParams


class TestCollectivesMisc:
    def test_merge_sorted_plain(self):
        assert merge_sorted([[1, 4], [2, 3], [0]]) == [0, 1, 2, 3, 4]

    def test_merge_sorted_with_key(self):
        runs = [[(3, "c"), (1, "a")][::-1], [(2, "b")]]
        got = merge_sorted(runs, key=lambda t: t[0])
        assert [x[1] for x in got] == ["a", "b", "c"]

    def test_regular_samples_spacing(self):
        samples = regular_samples(list(range(100)), 4)
        # Near-evenly spaced: quantiles at 20, 40, 60, 80.
        assert samples == [20, 40, 60, 80]

    def test_regular_samples_short_input(self):
        assert regular_samples([7], 5) == [7]
        assert regular_samples([], 5) == []


class TestStrictMode:
    def test_check_list_returned(self):
        machine = MachineParams(M=1 << 12, B=16, b=16, D=2)
        params = SimulationParams(
            machine=machine, bsp=BSPParams(v=1 << 10, mu=64, gamma=32), k=4
        )
        checked = params.check_theorem1()
        assert len(checked) == 4
        assert any("slackness" not in c for c in checked)

    def test_strict_end_to_end(self):
        """A configuration satisfying all Theorem 1 conditions runs strict."""
        n, v = 4096, 64
        data = workloads.uniform_keys(n, seed=1)
        alg = CGMSampleSort(data, v)
        machine = MachineParams(
            p=1, M=2 * alg.context_size(), D=2, B=16, b=16
        )
        out, report = simulate(
            CGMSampleSort(data, v), machine, v=v, k=2, strict=True, seed=1
        )
        assert [x for part in out for x in part] == sorted(data)


class TestNonNumericRecords:
    def test_sort_strings_through_em(self):
        rng_words = [f"w{i:04d}" for i in workloads.random_permutation(256, seed=2)]
        alg = CGMSampleSort(rng_words, 4)
        machine = MachineParams(p=1, M=2 * alg.context_size(), D=2, B=32, b=32)
        out, _ = simulate(CGMSampleSort(rng_words, 4), machine, v=4)
        assert [x for part in out for x in part] == sorted(rng_words)

    def test_tuples_with_key(self):
        data = [(i % 5, f"item{i}") for i in range(64)]
        out, _ = run_reference(CGMSampleSort(data, 4, key=lambda t: t[0]), 4)
        flat = [x for part in out for x in part]
        assert [t[0] for t in flat] == sorted(t[0] for t in data)


class TestTraceWindows:
    def test_render_start_offset(self):
        array = DiskArray(D=2, B=8)
        trace = IOTrace.attach(array)
        for t in range(10):
            array.parallel_write([(t % 2, t, Block(records=[]))])
        text = trace.render(start=8, width=5)
        assert "ops 8..10 of 10" in text

    def test_empty_trace_renders(self):
        array = DiskArray(D=2, B=8)
        trace = IOTrace.attach(array)
        assert "utilization 0%" in trace.render()


class TestSibeynCellsAccounting:
    def test_cells_charged_per_cell(self):
        from .helpers import AllToAllExchange
        from repro.baselines import SibeynKaufmannSimulation

        machine = MachineParams(p=1, M=4096, D=2, B=16, b=16)
        sim = SibeynKaufmannSimulation(AllToAllExchange(), 4, machine, mode="cells")
        _, stats = sim.run()
        # Every non-empty (src, dst) cell transfer charges ceil(3*mu/B).
        cell_blocks = -(-3 * AllToAllExchange().context_size() // 16)
        assert stats.cell_blocks_charged % cell_blocks == 0
        assert stats.cell_blocks_charged >= 16 * cell_blocks  # 4x4 sends

    def test_io_ops_match_disk_accesses(self):
        from .helpers import TotalExchangeSum
        from repro.baselines import SibeynKaufmannSimulation

        machine = MachineParams(p=1, M=1 << 13, D=4, B=16, b=16)
        sim = SibeynKaufmannSimulation(TotalExchangeSum(), 4, machine)
        _, stats = sim.run()
        assert sim.array.parallel_ops == stats.io_ops


class TestDiskArrayStats:
    def test_used_and_high_water_per_disk(self):
        array = DiskArray(D=3, B=8)
        array.parallel_write([(0, 5, Block(records=[])), (2, 1, Block(records=[]))])
        assert array.used_tracks_per_disk == [1, 0, 1]
        assert array.high_water_per_disk == [5, -1, 1]
        assert array.total_accesses == 2
        array.reset_stats()
        assert array.parallel_ops == 0 and array.total_accesses == 0
