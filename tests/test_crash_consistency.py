"""Crash-consistency tests: framing, torn/lost injection, journal, scrub.

The storage plane claims (DESIGN §9) that a host crash at *any* byte
boundary leaves a run recoverable: slot frames make torn and lost writes
detectable, the checkpoint journal's write/fsync/rename protocol makes
publication atomic, and ``scrub()`` plus a fresh engine recovers to the
exact golden outputs and counted costs.  These tests pin each mechanism in
isolation and then let :func:`repro.crashcheck.explore` sweep every crash
point of a small run end to end — including the planted-bug demonstration
that an engine which *forgets to fsync* before committing is caught by the
``crash_resume`` oracle.
"""

import os
import pickle
from unittest import mock

import pytest

from repro.core.checkpoint import CheckpointJournal, SuperstepCheckpoint, scrub
from repro.emio.disk import Block, DiskError
from repro.emio.diskarray import DiskArray
from repro.emio.faults import (
    CRASH_STAGES,
    ChecksumError,
    CrashPlan,
    CrashyStorage,
    HostCrash,
)
from repro.emio.storage import (
    FRAME_BYTES,
    FileStorage,
    MmapStorage,
    verify_extents,
)
from repro.params import MachineParams, ParameterError


def blk(tag, n=1):
    return Block(records=[tag] * n, dest=tag)


def make(impl, tmp_path, **kw):
    kw.setdefault("slot_bytes", 64)
    return impl(tmp_path / f"{impl.__name__}.dat", B=4, **kw)


def small_sort(n=64, v=4, data_seed=0):
    """A fresh tiny sample-sort instance (factory for the explorer)."""
    from repro import workloads as wl
    from repro.algorithms import CGMSampleSort

    return CGMSampleSort(wl.uniform_keys(n, seed=data_seed), v)


def run_sort(tmp_path, name="run", crash=None, p=1, storage="file", **kw):
    from repro.core.simulator import simulate

    machine = MachineParams(p=p, M=1 << 14, D=2, B=16, b=16 if p == 1 else 32)
    kw.setdefault("checkpoint", True)
    return simulate(
        small_sort(), machine, 4, seed=0, storage=storage,
        storage_dir=os.path.join(tmp_path, name), crash=crash, **kw,
    )


# ---------------------------------------------------------------------------
# Slot frames


class TestSlotFrames:
    def test_single_byte_corruption_detected_or_harmless(self, tmp_path):
        """Satellite (c): flip ANY single byte of the used file region —
        every track read either still equals the original block or raises
        ``ChecksumError``; silent wrong data is impossible."""
        s = make(FileStorage, tmp_path)
        originals = {}
        for t, n in enumerate((1, 3, 9, 40)):  # 1..4-slot runs
            originals[t] = blk(t, n=n)
            s.put(t, originals[t])
        s.sync()
        used = s._next_slot * s.slot_bytes
        detections = 0
        with open(s.path, "r+b") as fh:
            for off in range(used):
                fh.seek(off)
                orig = fh.read(1)
                fh.seek(off)
                fh.write(bytes([orig[0] ^ 0xFF]))
                fh.flush()
                for t in originals:
                    try:
                        assert s.get(t) == originals[t]
                    except ChecksumError:
                        detections += 1
                fh.seek(off)
                fh.write(orig)
                fh.flush()
        s.close()
        # Almost every byte of a mapped extent is load-bearing: at minimum
        # every payload byte and every frame-header byte must be caught.
        assert detections >= used // 2

    def test_generation_mismatch_detected(self, tmp_path):
        """A stale image with a valid CRC but the wrong generation tag is
        still rejected (lost-write detection across checkpoints)."""
        s = make(FileStorage, tmp_path)
        s.put(1, blk(1))
        snap = s.snapshot()  # gen 0 recorded, bumps the counter
        s.put(1, blk(2))  # gen 1 image in a fresh extent
        s.sync()
        doctored = dict(snap)
        base_new = s._map[1][0]
        doctored["map"] = {1: (base_new, s._map[1][1], s._map[1][2], 0)}
        with pytest.raises(ChecksumError, match="gen"):
            verify_extents(s.path, doctored)
        s.close()

    def test_short_file_detected(self, tmp_path):
        s = make(FileStorage, tmp_path)
        s.put(1, blk(1, n=40))
        snap = s.snapshot()
        s.sync()
        path = s.path
        s.close()
        with open(path, "r+b") as fh:
            fh.truncate(FRAME_BYTES + 4)
        with pytest.raises(ChecksumError, match="short read"):
            verify_extents(path, snap)

    def test_verify_extents_counts_tracks(self, tmp_path):
        s = make(FileStorage, tmp_path)
        for t in range(5):
            s.put(t, blk(t))
        snap = s.snapshot()
        s.sync()
        assert verify_extents(s.path, snap) == 5
        s.close()


# ---------------------------------------------------------------------------
# CrashyStorage


class TestCrashyStorage:
    def test_torn_write_half_applies_last_write(self, tmp_path):
        s = make(FileStorage, tmp_path)
        c = CrashyStorage(s, CrashPlan(seed=1))
        c.put(1, blk(1))
        c.sync()  # committed: safe from damage
        c.put(2, blk(2, n=9))
        c.apply_crash("torn")
        assert c.get(1) == blk(1)
        with pytest.raises(ChecksumError):
            c.get(2)
        c.close()

    def test_lost_write_to_fresh_extent_detected(self, tmp_path):
        s = make(FileStorage, tmp_path)
        c = CrashyStorage(s, CrashPlan(seed=1, keep_rate=0.0))
        c.put(1, blk(1))
        c.sync()
        c.put(2, blk(2))  # fresh extent: preimage is unwritten zeros
        c.apply_crash("lost")  # keep_rate=0: every unsynced write dropped
        assert c.get(1) == blk(1)
        with pytest.raises(ChecksumError):
            c.get(2)
        c.close()

    def test_lost_in_place_overwrite_restores_old_image(self, tmp_path):
        """Within one generation a same-size overwrite lands in place, so
        losing it restores the *old valid frame* — readable, stale, and by
        design unreachable from a resume (snapshots pin extents and bump
        the generation before anything is committed)."""
        s = make(FileStorage, tmp_path)
        c = CrashyStorage(s, CrashPlan(seed=1, keep_rate=0.0))
        c.put(1, blk(1))
        c.sync()
        c.put(1, blk(7))
        c.apply_crash("lost")
        assert c.get(1) == blk(1)  # pre-crash image, not garbage
        c.close()

    def test_lost_write_after_snapshot_detected_by_generation(self, tmp_path):
        """Across a snapshot the overwrite goes copy-on-write to a fresh
        extent stamped with the next generation: losing it leaves zeros
        (or a stale-generation image) that verify_extents rejects."""
        s = make(FileStorage, tmp_path)
        c = CrashyStorage(s, CrashPlan(seed=1, keep_rate=0.0))
        c.put(1, blk(1))
        c.sync()
        s.snapshot()
        c.put(1, blk(7))  # COW extent, generation 1
        snap = s.snapshot()
        c.apply_crash("lost")
        with pytest.raises(ChecksumError):
            verify_extents(s.path, snap)
        c.close()

    def test_sync_clears_the_log(self, tmp_path):
        s = make(FileStorage, tmp_path)
        c = CrashyStorage(s, CrashPlan(seed=1, keep_rate=0.0))
        c.put(1, blk(1))
        c.sync()
        c.apply_crash("lost")  # nothing unsynced: a no-op
        c.apply_crash("torn")
        assert c.get(1) == blk(1)
        c.close()

    @pytest.mark.parametrize("stage", ("torn", "lost"))
    def test_damage_is_deterministic(self, stage, tmp_path):
        def damaged_bytes(sub):
            d = tmp_path / sub
            d.mkdir()
            s = FileStorage(d / "t.dat", B=4, slot_bytes=64)
            c = CrashyStorage(s, CrashPlan(seed=9, keep_rate=0.4), proc=1,
                              disk_id=2)
            for t in range(6):
                c.put(t, blk(t, n=3))
            c.apply_crash(stage)
            c.close()
            return (d / "t.dat").read_bytes()

        assert damaged_bytes("a") == damaged_bytes("b")

    def test_counter_reset_passthrough(self, tmp_path):
        """`Disk.reset_stats` assigns the byte counters through the wrapper."""
        s = make(FileStorage, tmp_path)
        c = CrashyStorage(s, CrashPlan())
        c.put(1, blk(1))
        assert c.write_bytes > 0
        c.read_bytes = 0
        c.write_bytes = 0
        assert s.write_bytes == 0
        c.close()

    def test_plan_validation(self):
        with pytest.raises(ValueError, match="crash_point"):
            CrashPlan(crash_point=-1)
        with pytest.raises(ValueError, match="keep_rate"):
            CrashPlan(keep_rate=1.5)
        assert CrashPlan().stage_of(7) == CRASH_STAGES[2]


# ---------------------------------------------------------------------------
# Checkpoint journal


def ckpt(step=0):
    return SuperstepCheckpoint(
        step=step, rng_state=None, proc_states=[b"x"], proc_incoming=[None],
        report_blob=pickle.dumps(("r", step)),
    )


class TestCheckpointJournal:
    def test_commit_load_roundtrip(self, tmp_path):
        j = CheckpointJournal(tmp_path)
        gen = j.commit(ckpt(3))
        assert gen == 1
        assert j.load(1).step == 3
        assert j.load_latest()[0] == 1

    def test_prunes_to_keep_window(self, tmp_path):
        j = CheckpointJournal(tmp_path, keep=2)
        for step in range(5):
            j.commit(ckpt(step))
        assert j.generations() == [4, 5]

    def test_stage_hook_order(self, tmp_path):
        stages = []
        CheckpointJournal(tmp_path).commit(ckpt(), on_stage=stages.append)
        assert stages == ["staged", "committed"]

    def test_corrupt_newest_falls_back(self, tmp_path):
        j = CheckpointJournal(tmp_path)
        j.commit(ckpt(1))
        j.commit(ckpt(2))
        newest = os.path.join(j.dir, "ckpt-00000002.ckpt")
        with open(newest, "r+b") as fh:
            fh.seek(10)
            fh.write(b"\xff")
        with pytest.raises(ChecksumError, match="corrupt frame"):
            j.load(2)
        assert j.load_latest()[1].step == 1

    def test_uncommitted_temp_file_is_invisible(self, tmp_path):
        j = CheckpointJournal(tmp_path)
        j.commit(ckpt(1))
        # A crash between fsync and rename leaves only a .tmp behind.
        with open(os.path.join(j.dir, "ckpt-00000002.tmp"), "wb") as fh:
            fh.write(b"half-committed garbage")
        assert j.generations() == [1]
        assert j.load_latest()[0] == 1

    def test_quarantine_moves_aside(self, tmp_path):
        j = CheckpointJournal(tmp_path)
        j.commit(ckpt(1))
        moved = j.quarantine(1)
        assert moved.endswith(".quarantined") and os.path.exists(moved)
        assert j.generations() == []


# ---------------------------------------------------------------------------
# Scrub


class TestScrub:
    def test_honest_run_scrubs_clean(self, tmp_path):
        _out, rep = run_sort(tmp_path)
        res = scrub(os.path.join(tmp_path, "run"))
        assert res.quarantined == []
        assert res.generation is not None
        assert res.checkpoint.step == rep.faults.checkpoints_taken - 1
        assert res.extents_verified > 0

    def test_corrupt_journal_falls_back_one_generation(self, tmp_path):
        run_sort(tmp_path)
        root = os.path.join(tmp_path, "run")
        j = CheckpointJournal(root)
        gens = j.generations()
        assert len(gens) == 2  # keep-window of the barrier pin depth
        with open(j._path(gens[-1]), "r+b") as fh:
            fh.seek(6)
            fh.write(b"\xff\xff")
        res = scrub(root)
        assert res.quarantined == [gens[-1]]
        assert res.generation == gens[-2]
        assert res.errors and "corrupt frame" in res.errors[0]

    def test_damaged_track_extent_quarantines_generation(self, tmp_path):
        run_sort(tmp_path)
        root = os.path.join(tmp_path, "run")
        j = CheckpointJournal(root)
        newest = j.generations()[-1]
        ref = j.load(newest).storage_refs[0]
        snap = next(s for s in ref["disks"] if s and s["map"])
        base = next(iter(snap["map"].values()))[0]
        disk_id = ref["disks"].index(snap)
        with open(os.path.join(root, f"disk{disk_id}.dat"), "r+b") as fh:
            fh.seek(base * snap["slot_bytes"] + FRAME_BYTES)
            fh.write(b"\xff")
        res = scrub(root)
        assert newest in res.quarantined
        assert res.generation == newest - 1

    def test_scrub_reports_metrics(self, tmp_path):
        from repro.obs import Collector

        run_sort(tmp_path)
        obs = Collector()
        scrub(os.path.join(tmp_path, "run"), observer=obs)
        snap = obs.metrics.snapshot()
        assert snap["scrub/extents_verified"]["value"] > 0
        assert snap["scrub/generations_quarantined"]["value"] == 0

    def test_empty_root_scrubs_to_nothing(self, tmp_path):
        res = scrub(tmp_path)
        assert res.generation is None and res.checkpoint is None


# ---------------------------------------------------------------------------
# Mmap flush hardening (satellite b)


class TestMmapDurability:
    def test_cross_impl_reattach_after_sync(self, tmp_path):
        """After ``sync()`` the bytes must be durable in the *file*, not
        just the mapping: a plain pread-based reader sees every frame."""
        s = make(MmapStorage, tmp_path)
        for t in range(4):
            s.put(t, blk(t, n=2))
        snap = s.snapshot()
        s.sync()
        assert verify_extents(s.path, snap) == 4
        r = FileStorage(s.path, B=4, slot_bytes=64)
        r.restore(snap)
        for t in range(4):
            assert r.get(t) == blk(t, n=2)
        r.close()
        s.close()

    def test_remap_growth_flushes_old_window(self, tmp_path):
        s = make(MmapStorage, tmp_path)
        s.put(1, blk(1))
        for t in range(2, 40):  # force several _grow/_remap cycles
            s.put(t, blk(t, n=8))
        snap = s.snapshot()
        s.sync()
        assert verify_extents(s.path, snap) == 39
        s.close()

    def test_close_flushes_dirty_map(self, tmp_path):
        s = make(MmapStorage, tmp_path)
        s.put(1, blk(1, n=5))
        snap = s.snapshot()
        s.close()  # no explicit sync: close itself must flush
        assert verify_extents(s.path, snap) == 1


# ---------------------------------------------------------------------------
# Engine wiring


class TestEngineCrashWiring:
    def test_crash_requires_checkpoint_and_durable_plane(self, tmp_path):
        with pytest.raises(ParameterError, match="checkpoint=True"):
            run_sort(tmp_path, crash=CrashPlan(), checkpoint=False)
        with pytest.raises(ParameterError, match="non-memory"):
            run_sort(tmp_path, crash=CrashPlan(), storage="memory")

    def test_crash_point_fires_as_host_crash(self, tmp_path):
        with pytest.raises(HostCrash, match="point 2 .*postsync"):
            run_sort(tmp_path, crash=CrashPlan(crash_point=2))

    def test_crash_point_past_the_run_never_fires(self, tmp_path):
        golden_out, golden_rep = run_sort(tmp_path, name="golden")
        out, rep = run_sort(tmp_path, crash=CrashPlan(crash_point=10_000))
        assert out == golden_out
        assert rep.ledger.summary() == golden_rep.ledger.summary()

    def test_checkpoint_commit_counter(self, tmp_path):
        from repro.obs import Collector

        obs = Collector()
        _out, rep = run_sort(tmp_path, observer=obs)
        commits = obs.metrics.snapshot()["checkpoint/commits"]["value"]
        assert commits == rep.faults.checkpoints_taken


# ---------------------------------------------------------------------------
# The explorer, exhaustively, plus the planted-bug demonstration


class TestCrashExplorer:
    def test_sequential_sweep_recovers_every_point(self, tmp_path):
        from repro.crashcheck import explore

        machine = MachineParams(p=1, M=1 << 14, D=2, B=16, b=16)
        res = explore(small_sort, machine, 4, tmp_path, log=None)
        assert res.total_points == len(CRASH_STAGES) * res.checkpoints
        assert len(res.outcomes) == res.total_points
        assert res.passed, [str(o) for o in res.failures]
        actions = {o.action for o in res.outcomes}
        assert "restart" in actions  # pre-first-commit points
        assert any(a.startswith("resume@") for a in actions)

    def test_parallel_inline_sweep_recovers_every_point(self, tmp_path):
        from repro.crashcheck import explore

        machine = MachineParams(p=2, M=1 << 14, D=2, B=16, b=32)
        res = explore(small_sort, machine, 4, tmp_path)
        assert res.passed, [str(o) for o in res.failures]
        assert res.total_points > 0

    def test_planted_missing_fsync_is_caught(self, tmp_path):
        """The planted bug class: an engine that no longer syncs the track
        files before committing.  The 'lost' stage then rolls back writes
        from *before* the committed barrier, and scrub must quarantine."""
        from repro.conform.runner import run_case
        from repro.conform.strategies import repair

        cfg = repair(dict(workload="sort", n=64, v=4, p=1, M=4096, D=2,
                          B=16, b=16, crash=True, crash_point=6,
                          crash_seed=3))
        with mock.patch.object(DiskArray, "sync_storage", lambda self: None):
            result = run_case(cfg)
        assert not result.passed
        assert any(f.oracle == "crash_resume" and "quarantined" in f.message
                   for f in result.failures)

    def test_conform_crash_oracle_passes_honest_code(self, tmp_path):
        from repro.conform.runner import run_case
        from repro.conform.strategies import repair

        for pt, expected in ((0, "crash_restart"), (7, "crash_resume"),
                             (9_999, "crash_survived")):
            cfg = repair(dict(workload="sort", n=64, v=4, p=1, M=4096, D=2,
                              B=16, b=16, crash=True, crash_point=pt))
            result = run_case(cfg)
            assert result.passed, [str(f) for f in result.failures]
            assert result.checks[expected] == 1

    def test_crash_repair_implications(self):
        from repro.conform.strategies import repair

        cfg = repair(dict(workload="permute", n=32, v=4, crash=True,
                          crash_point=-5, fault="kill", storage="memory"))
        assert cfg.checkpoint and cfg.storage == "file"
        assert cfg.fault == "none" and cfg.crash_point == 0
        assert "crash@" in cfg.describe()
        assert repair(cfg) == cfg
