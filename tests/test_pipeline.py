"""Tests for the Pipeline composition helper."""

import pytest

from repro import workloads
from repro.algorithms.graphs import batched_lca, biconnected_components, tree_depths
from repro.bsp.runner import run_reference
from repro.params import MachineParams
from repro.pipeline import Pipeline

MACHINE = MachineParams(p=1, M=1 << 14, D=4, B=32, b=32)


class TestPipeline:
    def test_lca_through_pipeline(self):
        import random

        n, v = 32, 4
        edges = workloads.random_tree_edges(n, seed=3)
        rng = random.Random(3)
        queries = [(rng.randrange(n), rng.randrange(n)) for _ in range(10)]
        ref = batched_lca(edges, 0, queries, v)  # reference runner

        pipe = Pipeline(MACHINE, seed=5)
        got = batched_lca(edges, 0, queries, v, run=pipe.run)
        assert got == ref
        assert pipe.stages == 4  # tour + 2 rankings + RMQ
        assert pipe.io_ops > 0
        assert pipe.supersteps == sum(
            r.num_supersteps for _n, r in pipe.reports
        )

    def test_tree_depths_accumulates(self):
        n, v = 24, 4
        edges = workloads.random_tree_edges(n, seed=4)
        pipe = Pipeline(MACHINE)
        depths = tree_depths(edges, 0, v, run=pipe.run)
        assert depths[0] == 0
        assert pipe.stages == 2  # tour + ranking
        s = pipe.summary()
        assert s["stages"] == 2
        assert len(s["per_stage"]) == 2
        assert s["io_ops"] == pipe.io_ops

    def test_memory_auto_raised(self):
        # A machine too small for the stage's context still works: Pipeline
        # raises M to hold min_k contexts.
        small = MachineParams(p=1, M=256, D=2, B=16, b=16)
        n, v = 24, 4
        edges = workloads.random_tree_edges(n, seed=5)
        pipe = Pipeline(small)
        depths = tree_depths(edges, 0, v, run=pipe.run)
        assert depths[0] == 0

    def test_format_profile(self):
        n, v = 16, 4
        edges = workloads.random_graph_edges(n, 30, seed=6, connected=True)
        pipe = Pipeline(MACHINE)
        biconnected_components(n, edges, v, run=pipe.run)
        profile = pipe.format_profile()
        assert "TOTAL" in profile
        assert "CGMSpanningForest" in profile

    def test_seeds_advance_per_stage(self):
        n, v = 24, 4
        edges = workloads.random_tree_edges(n, seed=7)
        p1 = Pipeline(MACHINE, seed=9)
        p2 = Pipeline(MACHINE, seed=9)
        assert tree_depths(edges, 0, v, run=p1.run) == tree_depths(
            edges, 0, v, run=p2.run
        )
        # Deterministic stage-by-stage costs for equal seeds.
        assert [r.io_ops for _n, r in p1.reports] == [
            r.io_ops for _n, r in p2.reports
        ]
