"""Theorem 1 side conditions, each violated in isolation.

``SimulationParams(strict=True)`` enforces the four side conditions of
Theorem 1.  Each test here builds a configuration that satisfies three of
them and breaks exactly one, so a regression in any single check (or in
the order they run) is pinned to its own test.  The happy path asserts
the ``checked`` list names all four, so a silently skipped condition also
fails loudly.  Every rejection must carry the full parameter tuple
(``describe()``) so a failing config is self-describing — the conformance
fuzzer's repro cases rely on that.
"""

import pytest

from repro.params import (
    BSPParams,
    MachineParams,
    ParameterError,
    SimulationParams,
)


def params(machine, v, mu, k=1, strict=True):
    return SimulationParams(
        machine=machine, bsp=BSPParams(v=v, mu=mu, gamma=mu), k=k, strict=strict
    )


class TestEachConditionInIsolation:
    def test_slackness_violated_alone(self):
        # log(M/B) = log2(256) = 8, so k*p*D*log(M/B) = 32 > v = 4.
        # b=16 >= B=16; p=1 skips M/B >= p^eps; b*log(M/B) = 128 <= 4M.
        machine = MachineParams(p=1, M=4096, D=4, B=16, b=16)
        with pytest.raises(ParameterError, match="slackness violated") as ei:
            params(machine, v=4, mu=16)
        assert "v=4" in str(ei.value)
        assert "k*p*D*log(M/B)=32.0" in str(ei.value)

    def test_packet_smaller_than_block_alone(self):
        # log(M/B) = log2(32) = 5, slack = 5 <= v = 8; b*log(M/B) = 80 <= 4M.
        machine = MachineParams(p=1, M=1024, D=1, B=32, b=16)
        with pytest.raises(
            ParameterError, match="packet size b=16 must be >= block size B=32"
        ):
            params(machine, v=8, mu=16)

    def test_memory_too_small_for_p_alone(self):
        # M/B = 1 < p^0.5 = 2.  log(M/B) = 0 kills the slackness and
        # b*log(M/B) terms, and b=64 >= B=64.
        machine = MachineParams(p=4, M=64, D=1, B=64, b=64)
        with pytest.raises(ParameterError, match=r"M/B=1\.0 < p\^eps=2\.0"):
            params(machine, v=4, mu=16)

    def test_memory_condition_skipped_for_single_processor(self):
        # The same M/B = 1 is fine on p=1: the condition is p > 1 only.
        machine = MachineParams(p=1, M=64, D=1, B=64, b=64)
        sp = params(machine, v=4, mu=16)
        assert sp.check_theorem1()

    def test_packet_log_term_not_linear_in_M_alone(self):
        # b*log(M/B) = 64*4 = 256 > 4M = 64; slack = 4 <= v = 4; b >= B = 1.
        machine = MachineParams(p=1, M=16, D=1, B=1, b=64)
        with pytest.raises(
            ParameterError, match=r"b\*log\(M/B\)=256 must be O\(M\)=16"
        ):
            params(machine, v=4, mu=4)


class TestHappyPath:
    def test_checked_list_names_all_four_conditions(self):
        machine = MachineParams(p=2, M=4096, D=2, B=16, b=16)
        sp = params(machine, v=32, mu=16)
        checked = sp.check_theorem1()
        assert len(checked) == 4
        assert checked[0].startswith("v >= k*p*D*log(M/B)")
        assert checked[1].startswith("b >= B")
        assert checked[2] == "M/B >= p^eps"
        assert checked[3] == "b*log(M/B) = O(M)"

    def test_strict_false_accepts_the_same_violations(self):
        machine = MachineParams(p=1, M=4096, D=4, B=16, b=16)
        sp = params(machine, v=4, mu=16, strict=False)
        assert sp.k == 1  # structurally valid, just not Theorem-1-sized


class TestSelfDescribingErrors:
    def test_theorem1_rejection_carries_full_tuple(self):
        machine = MachineParams(p=1, M=4096, D=4, B=16, b=16)
        with pytest.raises(ParameterError) as ei:
            params(machine, v=4, mu=16)
        msg = str(ei.value)
        assert "[machine(p=1, M=4096, D=4, B=16, b=16" in msg
        assert "bsp(v=4, mu=16, gamma=16) k=1]" in msg

    def test_structural_rejection_carries_full_tuple(self):
        machine = MachineParams(p=1, M=64, D=1, B=16, b=16)
        with pytest.raises(ParameterError) as ei:
            params(machine, v=4, mu=128, k=None, strict=False)
        msg = str(ei.value)
        assert "cannot hold one virtual context" in msg
        assert "[machine(p=1, M=64, D=1, B=16, b=16" in msg
