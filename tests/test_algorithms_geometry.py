"""Tests for Group B CGM geometry algorithms, against brute-force oracles."""

import math
import random

import pytest

from repro import workloads
from repro.algorithms.geometry import (
    CGM3DMaxima,
    CGMAllNearestNeighbors,
    CGMConvexHull,
    CGMDominanceCounting,
    CGMLowerEnvelope,
    CGMNextElementSearch,
    CGMRectangleUnionArea,
    CGMSeparability,
    convex_hull,
    union_area_sweep,
)
from repro.bsp.runner import run_reference
from repro.core.simulator import simulate
from repro.params import MachineParams

MACHINE = MachineParams(p=1, M=1 << 17, D=2, B=32, b=32)


class TestPrimitives:
    def test_convex_hull_square(self):
        pts = [(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)]
        hull = convex_hull(pts)
        assert set(hull) == {(0, 0), (1, 0), (1, 1), (0, 1)}

    def test_convex_hull_collinear(self):
        pts = [(0, 0), (1, 1), (2, 2), (3, 3)]
        hull = convex_hull(pts)
        assert set(hull) <= {(0, 0), (3, 3)}

    def test_union_area_disjoint(self):
        assert union_area_sweep([(0, 0, 1, 1), (2, 2, 3, 4)]) == pytest.approx(3.0)

    def test_union_area_nested(self):
        assert union_area_sweep([(0, 0, 4, 4), (1, 1, 2, 2)]) == pytest.approx(16.0)

    def test_union_area_overlap(self):
        assert union_area_sweep([(0, 0, 2, 2), (1, 1, 3, 3)]) == pytest.approx(7.0)


class TestConvexHull:
    @pytest.mark.parametrize("n,v", [(40, 4), (200, 4), (100, 8)])
    def test_matches_oracle(self, n, v):
        pts = workloads.random_points(n, seed=n + v)
        out, ledger = run_reference(CGMConvexHull(pts, v), v)
        assert set(out[0]) == set(convex_hull(pts))
        assert ledger.num_supersteps == CGMConvexHull.LAMBDA

    def test_points_on_circle(self):
        pts = [
            (math.cos(2 * math.pi * i / 24), math.sin(2 * math.pi * i / 24))
            for i in range(24)
        ]
        out, _ = run_reference(CGMConvexHull(pts, 4), 4)
        assert len(out[0]) == 24  # all on the hull

    def test_em_sequential_matches(self):
        pts = workloads.random_points(80, seed=5)
        out, report = simulate(CGMConvexHull(pts, 4), MACHINE, v=4)
        assert set(out[0]) == set(convex_hull(pts))
        assert report.io_ops > 0


def brute_maxima_3d(pts):
    return sorted(
        p
        for p in pts
        if not any(
            q[0] > p[0] and q[1] > p[1] and q[2] > p[2] for q in pts
        )
    )


class Test3DMaxima:
    @pytest.mark.parametrize("n,v", [(30, 4), (120, 4), (60, 8)])
    def test_matches_oracle(self, n, v):
        pts = workloads.random_points(n, seed=n * 3 + v, dims=3)
        out, _ = run_reference(CGM3DMaxima(pts, v), v)
        got = sorted(p for part in out for p in part)
        assert got == brute_maxima_3d(pts)

    def test_chain_all_maximal(self):
        # Anti-chain: decreasing x, increasing y and z -> all maximal.
        pts = [(10.0 - i, float(i), float(i)) for i in range(12)]
        out, _ = run_reference(CGM3DMaxima(pts, 4), 4)
        assert sorted(p for part in out for p in part) == sorted(pts)

    def test_single_dominator(self):
        pts = [(float(i), float(i), float(i)) for i in range(12)]
        out, _ = run_reference(CGM3DMaxima(pts, 4), 4)
        assert [p for part in out for p in part] == [(11.0, 11.0, 11.0)]

    def test_em_sequential_matches(self):
        pts = workloads.random_points(60, seed=7, dims=3)
        out, _ = simulate(CGM3DMaxima(pts, 4), MACHINE, v=4)
        got = sorted(p for part in out for p in part)
        assert got == brute_maxima_3d(pts)


def brute_dominance(pts, weights=None):
    w = weights or [1.0] * len(pts)
    return [
        sum(
            w[j]
            for j, q in enumerate(pts)
            if q[0] < p[0] and q[1] < p[1]
        )
        for p in pts
    ]


class TestDominanceCounting:
    @pytest.mark.parametrize("n,v", [(24, 4), (100, 4), (64, 8)])
    def test_unweighted(self, n, v):
        pts = workloads.random_points(n, seed=n + 13)
        out, _ = run_reference(CGMDominanceCounting(pts, v), v)
        got = {}
        for part in out:
            got.update(dict(part))
        expected = brute_dominance(pts)
        assert [got[i] for i in range(n)] == pytest.approx(expected)

    def test_weighted(self):
        n, v = 40, 4
        pts = workloads.random_points(n, seed=21)
        rng = random.Random(3)
        weights = [rng.uniform(0.5, 2.0) for _ in range(n)]
        out, _ = run_reference(CGMDominanceCounting(pts, v, weights=weights), v)
        got = {}
        for part in out:
            got.update(dict(part))
        expected = brute_dominance(pts, weights)
        assert [got[i] for i in range(n)] == pytest.approx(expected)

    def test_grid_points_with_ties(self):
        pts = [(float(i % 4), float(i // 4)) for i in range(16)]
        out, _ = run_reference(CGMDominanceCounting(pts, 4), 4)
        got = {}
        for part in out:
            got.update(dict(part))
        assert [got[i] for i in range(16)] == pytest.approx(brute_dominance(pts))

    def test_em_sequential_matches(self):
        n, v = 48, 4
        pts = workloads.random_points(n, seed=31)
        out, _ = simulate(CGMDominanceCounting(pts, v), MACHINE, v=v)
        got = {}
        for part in out:
            got.update(dict(part))
        assert [got[i] for i in range(n)] == pytest.approx(brute_dominance(pts))


class TestRectangleUnion:
    @pytest.mark.parametrize("n,v", [(10, 4), (60, 4), (40, 8)])
    def test_matches_oracle(self, n, v):
        rects = workloads.random_rectangles(n, seed=n + v)
        out, _ = run_reference(CGMRectangleUnionArea(rects, v), v)
        assert out[0][0] == pytest.approx(union_area_sweep(rects), rel=1e-9)

    def test_identical_rectangles(self):
        rects = [(0.0, 0.0, 5.0, 5.0)] * 8
        out, _ = run_reference(CGMRectangleUnionArea(rects, 4), 4)
        assert out[0][0] == pytest.approx(25.0)

    def test_spanning_rectangle(self):
        rects = workloads.random_rectangles(20, seed=5) + [(-10.0, 0.0, 2000.0, 1.0)]
        out, _ = run_reference(CGMRectangleUnionArea(rects, 4), 4)
        assert out[0][0] == pytest.approx(union_area_sweep(rects), rel=1e-9)

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            CGMRectangleUnionArea([(1.0, 0.0, 0.0, 1.0)], 2)

    def test_em_sequential_matches(self):
        rects = workloads.random_rectangles(40, seed=8)
        out, _ = simulate(CGMRectangleUnionArea(rects, 4), MACHINE, v=4)
        assert out[0][0] == pytest.approx(union_area_sweep(rects), rel=1e-9)


def brute_envelope_check(segments, pieces):
    """Validate an envelope piece list by dense x-sampling."""
    rng = random.Random(0)
    for xa, xb, sid in pieces:
        for _ in range(5):
            x = rng.uniform(xa, xb)
            ys = [
                (y1 + (y2 - y1) * ((x - x1) / (x2 - x1)) if x2 > x1 else min(y1, y2), i)
                for i, (x1, y1, x2, y2) in enumerate(segments)
                if x1 <= x <= x2
            ]
            assert ys, f"piece claims coverage at x={x} but no segment is there"
            best = min(ys)
            got = next(y for y, i in ys if i == sid)
            assert got == pytest.approx(best[0])


class TestLowerEnvelope:
    @pytest.mark.parametrize("n,v", [(12, 4), (50, 4), (30, 8)])
    def test_matches_oracle(self, n, v):
        segs = workloads.random_segments(n, seed=n + v)
        out, _ = run_reference(CGMLowerEnvelope(segs, v), v)
        brute_envelope_check(segs, out[0])
        # Coverage: every x covered by some segment appears in some piece.
        total_cover = sum(xb - xa for xa, xb, _ in out[0])
        assert total_cover > 0

    def test_single_segment(self):
        segs = [(0.0, 5.0, 10.0, 5.0)]
        out, _ = run_reference(CGMLowerEnvelope(segs, 2), 2)
        (xa, xb, sid) = out[0][0]
        assert sid == 0 and xa == pytest.approx(0.0) and xb == pytest.approx(10.0)

    def test_em_sequential_matches(self):
        segs = workloads.random_segments(30, seed=17)
        out, _ = simulate(CGMLowerEnvelope(segs, 4), MACHINE, v=4)
        brute_envelope_check(segs, out[0])


class TestAllNearestNeighbors:
    @pytest.mark.parametrize("n,v", [(8, 4), (60, 4), (40, 8)])
    def test_matches_oracle(self, n, v):
        pts = workloads.random_points(n, seed=n * 5 + v)
        out, _ = run_reference(CGMAllNearestNeighbors(pts, v), v)
        got = {}
        for part in out:
            got.update(dict(part))
        for i, p in enumerate(pts):
            dists = [
                ((p[0] - q[0]) ** 2 + (p[1] - q[1]) ** 2, j)
                for j, q in enumerate(pts)
                if j != i
            ]
            assert got[i] == min(dists)[1]

    def test_two_points(self):
        out, _ = run_reference(CGMAllNearestNeighbors([(0.0, 0.0), (1.0, 1.0)], 2), 2)
        got = {}
        for part in out:
            got.update(dict(part))
        assert got == {0: 1, 1: 0}

    def test_clustered_far_pairs(self):
        # Close pairs in distant clusters: nn must stay inside the cluster.
        pts = []
        for cx in (0.0, 1000.0, 2000.0, 3000.0):
            pts.extend([(cx, 0.0), (cx + 1.0, 0.5)])
        out, _ = run_reference(CGMAllNearestNeighbors(pts, 4), 4)
        got = {}
        for part in out:
            got.update(dict(part))
        for i in range(0, 8, 2):
            assert got[i] == i + 1 and got[i + 1] == i

    def test_em_sequential_matches(self):
        pts = workloads.random_points(32, seed=77)
        out, _ = simulate(CGMAllNearestNeighbors(pts, 4), MACHINE, v=4)
        got = {}
        for part in out:
            got.update(dict(part))
        for i, p in enumerate(pts):
            dists = [
                ((p[0] - q[0]) ** 2 + (p[1] - q[1]) ** 2, j)
                for j, q in enumerate(pts)
                if j != i
            ]
            assert got[i] == min(dists)[1]


class TestNextElementSearch:
    @pytest.mark.parametrize("n,v", [(10, 4), (40, 4)])
    def test_matches_oracle(self, n, v):
        segs = workloads.random_segments(n, seed=n + 3)
        rng = random.Random(n)
        queries = [(rng.uniform(0, 1000), rng.uniform(0, 100 * n)) for _ in range(n)]
        out, _ = run_reference(CGMNextElementSearch(segs, queries, v), v)
        got = {}
        for part in out:
            got.update(dict(part))
        for qi, (qx, qy) in enumerate(queries):
            candidates = [
                (y1, i)
                for i, (x1, y1, x2, y2) in enumerate(segs)
                if x1 <= qx <= x2 and y1 >= qy  # horizontal segments
            ]
            expected = min(candidates)[1] if candidates else -1
            assert got[qi] == expected

    def test_query_above_everything(self):
        segs = [(0.0, 1.0, 10.0, 1.0)]
        out, _ = run_reference(CGMNextElementSearch(segs, [(5.0, 2.0)], 2), 2)
        got = dict(p for part in out for p in part)
        assert got[0] == -1

    def test_em_sequential_matches(self):
        segs = workloads.random_segments(20, seed=9)
        rng = random.Random(1)
        queries = [(rng.uniform(0, 1000), rng.uniform(0, 2000)) for _ in range(16)]
        out, _ = simulate(CGMNextElementSearch(segs, queries, 4), MACHINE, v=4)
        got = {}
        for part in out:
            got.update(dict(part))
        for qi, (qx, qy) in enumerate(queries):
            candidates = [
                (y1, i)
                for i, (x1, y1, x2, y2) in enumerate(segs)
                if x1 <= qx <= x2 and y1 >= qy
            ]
            expected = min(candidates)[1] if candidates else -1
            assert got[qi] == expected


class TestSeparability:
    def test_separable_sets(self):
        red = [(0.0, float(i)) for i in range(10)]
        blue = [(10.0, float(i)) for i in range(10)]
        out, _ = run_reference(
            CGMSeparability(red, blue, [(1.0, 0.0), (0.0, 1.0)], 4), 4
        )
        assert out[0] == [True, False]  # separable in x, overlapping in y

    def test_interleaved_not_separable(self):
        red = [(float(i), 0.0) for i in range(0, 10, 2)]
        blue = [(float(i), 0.0) for i in range(1, 10, 2)]
        out, _ = run_reference(CGMSeparability(red, blue, [(1.0, 0.0)], 4), 4)
        assert out[0] == [False]

    def test_multi_directional(self):
        rng = random.Random(5)
        red = [(rng.uniform(0, 1), rng.uniform(0, 1)) for _ in range(20)]
        blue = [(rng.uniform(3, 4), rng.uniform(3, 4)) for _ in range(20)]
        dirs = [(1.0, 0.0), (0.0, 1.0), (1.0, 1.0), (-1.0, 0.0)]
        out, _ = run_reference(CGMSeparability(red, blue, dirs, 4), 4)
        # Brute-force check per direction.
        for verdict, (dx, dy) in zip(out[0], dirs):
            rmax = max(p[0] * dx + p[1] * dy for p in red)
            bmin = min(p[0] * dx + p[1] * dy for p in blue)
            assert verdict == (rmax < bmin)

    def test_requires_directions(self):
        with pytest.raises(ValueError):
            CGMSeparability([(0, 0)], [(1, 1)], [], 2)

    def test_em_sequential_matches(self):
        red = workloads.random_points(20, seed=41)
        blue = [(x + 5000, y) for x, y in workloads.random_points(20, seed=42)]
        out, _ = simulate(
            CGMSeparability(red, blue, [(1.0, 0.0)], 4), MACHINE, v=4
        )
        assert out[0] == [True]
