"""Golden + unit suite for the overlapped-I/O storage plane (DESIGN §12).

The flusher pool moves bytes on a background thread, but the model charges
I/O before any data moves, so ``io_overlap=True`` must be *byte-inert*:
outputs, cost ledgers, IOTraces, checkpoint files, and crash semantics all
identical to the synchronous plane.  The golden matrix here pins that over
overlap on/off x engines x backends x file/mmap x crash injection; the unit
tests pin the pool's own contracts — read-after-queued-write overlay,
supersede, quiesce-before-fsync ordering, and shutdown on worker errors.
"""

import hashlib
import os
import threading

import pytest

from repro.emio.disk import Block
from repro.emio.faults import CRASH_STAGES, HostCrash
from repro.emio.storage import FileStorage, MmapStorage, StorageSpec
from repro.emio.trace import IOTrace
from repro.params import MachineParams

from .test_fastpath_golden import FAST, build, golden, make_listrank, make_sort

PLANES = ("file", "mmap")


def blk(tag, n=4):
    return Block(records=[tag] * n, dest=tag)


def make_overlapped(impl, tmp_path, **kw):
    kw.setdefault("slot_bytes", 64)
    kw.setdefault("io_overlap", True)
    return impl(tmp_path / f"{impl.__name__}.dat", B=4, **kw)


# -- golden matrix ------------------------------------------------------------


class TestGoldenMatrix:
    @pytest.mark.parametrize("make", [make_sort, make_listrank])
    @pytest.mark.parametrize("plane", PLANES)
    def test_sequential_overlap_equals_memory(self, make, plane):
        ref = golden(build(make, "sequential"))
        got = golden(build(make, "sequential", storage=plane, io_overlap=True))
        assert got == ref

    @pytest.mark.parametrize("plane", PLANES)
    def test_parallel_inline_overlap_equals_memory(self, plane):
        ref = golden(build(make_sort, "parallel"))
        got = golden(build(make_sort, "parallel", storage=plane, io_overlap=True))
        assert got == ref

    @pytest.mark.parametrize("plane", PLANES)
    def test_parallel_process_overlap_equals_memory(self, plane):
        """Each worker owns a private flusher pool over its proc{i} subdir."""
        ref = golden(build(make_sort, "parallel"))
        got = golden(
            build(make_sort, "parallel", backend="process", storage=plane,
                  io_overlap=True)
        )
        assert got == ref

    def test_overlap_with_fast_knobs_and_checkpointing(self):
        ref = golden(build(make_sort, "sequential", checkpoint=True))
        got = golden(
            build(make_sort, "sequential", checkpoint=True, storage="file",
                  io_overlap=True, **FAST)
        )
        assert got == ref

    @pytest.mark.parametrize("plane", PLANES)
    def test_iotrace_byte_identical(self, plane):
        """The counted operation stream is overlap-independent."""
        sims, traces = [], []
        for kwargs in ({"storage": plane}, {"storage": plane, "io_overlap": True}):
            sim = build(make_sort, "sequential", **kwargs)
            traces.append(IOTrace.attach(sim.array))
            sims.append(sim)
        assert golden(sims[1]) == golden(sims[0])
        sync_ops, async_ops = [
            [(op.kind, op.disks, op.tracks, op.retry) for op in t.ops]
            for t in traces
        ]
        assert async_ops == sync_ops
        assert traces[0].counts() == traces[1].counts()

    def test_checkpoint_files_byte_identical(self, tmp_path):
        """After a checkpointed run, the storage root — track files, journal
        generations, snapshots — is byte-for-byte the synchronous plane's:
        supersede only drops writes fully covered by a later queued write,
        so the settled platter image can never diverge."""
        from repro.core.checkpoint import CheckpointJournal

        def tree_digest(root):
            """Per-file sha256; checkpoint blobs are normalized structurally
            (they embed the absolute storage root, which must differ here)."""
            digest = {}
            journal = CheckpointJournal(root)
            for gen in journal.generations():
                ckpt = journal.load(gen)
                refs = [dict(r, root="<root>") for r in ckpt.storage_refs]
                digest[f"ckpt-{gen}"] = repr(
                    {f: refs if f == "storage_refs" else getattr(ckpt, f)
                     for f in ckpt.__dataclass_fields__}
                )
            for dirpath, _dirs, files in os.walk(root):
                for name in files:
                    if name.endswith(".ckpt"):
                        continue
                    path = os.path.join(dirpath, name)
                    with open(path, "rb") as fh:
                        digest[os.path.relpath(path, root)] = hashlib.sha256(
                            fh.read()
                        ).hexdigest()
            return digest

        roots = {}
        for key, overlap in (("sync", False), ("async", True)):
            root = tmp_path / key
            sim = build(make_sort, "sequential", checkpoint=True,
                        storage="file", storage_dir=str(root),
                        io_overlap=overlap)
            sim.run()
            roots[key] = tree_digest(root)
        assert roots["async"] == roots["sync"]

    @pytest.mark.parametrize("stage_index", range(len(CRASH_STAGES)))
    def test_crash_injection_identical_under_overlap(self, tmp_path, stage_index):
        """One crash point per stage: the HostCrash, the scrubbed state, and
        the recovery all match the synchronous plane (CrashyStorage logs at
        submission time and damages a quiesced platter)."""
        from repro.core.checkpoint import scrub
        from repro.emio.faults import CrashPlan

        expected = golden(build(make_sort, "sequential"))["outputs"]
        results = {}
        for key, overlap in (("sync", False), ("async", True)):
            root = tmp_path / f"{key}{stage_index}"
            plan = CrashPlan(seed=11, crash_point=stage_index)
            sim = build(make_sort, "sequential", checkpoint=True,
                        storage="file", storage_dir=str(root),
                        io_overlap=overlap, crash=plan)
            with pytest.raises(HostCrash):
                sim.run()
            res = scrub(str(root))
            assert not res.quarantined, (key, res.errors)
            fresh = build(make_sort, "sequential", checkpoint=True,
                          storage="file", storage_dir=str(root),
                          io_overlap=overlap)
            if res.checkpoint is not None:
                out, _rep = fresh.resume_from_checkpoint(res.checkpoint)
                action = f"resume@{res.checkpoint.step}"
            else:
                out, _rep = fresh.run()
                action = "restart"
            assert out == expected, key
            results[key] = (action, res.extents_verified)
        assert results["async"] == results["sync"]


# -- pool unit contracts ------------------------------------------------------


class TestWriteBehindQueue:
    @pytest.mark.parametrize("impl", [FileStorage, MmapStorage])
    def test_read_after_queued_write(self, impl, tmp_path):
        """A read while the write sits in the queue returns the queued image,
        not the stale platter bytes."""
        st = make_overlapped(impl, tmp_path)
        try:
            st.put(0, blk(1))
            st.sync()  # settle the first image on the platter
            st._pool.gate.clear()  # stall the worker before any transfer
            st.put(0, blk(2))
            assert st.get(0).records == [2] * 4
            assert st.peek(0).records == [2] * 4
        finally:
            st._pool.gate.set()
            st.close()

    def test_supersede_drops_fully_covered_queued_writes(self, tmp_path):
        st = make_overlapped(FileStorage, tmp_path)
        try:
            pool = st._pool
            pool.gate.clear()
            st.put(0, blk(1))
            st.put(0, blk(2))
            st.put(0, blk(3))
            # Same track, same payload length -> same slot extent: the two
            # stale images are dropped, one write reaches the platter.
            off, nbytes = 0, st.slot_bytes
            assert len(pool.pending_in(off, nbytes)) == 1
        finally:
            pool.gate.set()
            st.close()

    def test_partially_covered_writes_all_land_in_order(self, tmp_path):
        """put_many merges adjacent slots into one image; a later single-slot
        write only partially covers it, so both must land, in sequence."""
        st = make_overlapped(FileStorage, tmp_path)
        try:
            st._pool.gate.clear()
            st.put_many([(0, blk(1)), (1, blk(2))])
            st.put(1, blk(9))
            st._pool.gate.set()
            st.sync()
            assert st.get(0).records == [1] * 4
            assert st.get(1).records == [9] * 4
        finally:
            st.close()

    def test_overlay_composes_reads_of_merged_spans(self, tmp_path):
        """get_many's coalesced pread overlaps a queued write: the overlay
        must splice the queued image into the span."""
        st = make_overlapped(FileStorage, tmp_path)
        try:
            st.put_many([(t, blk(t)) for t in range(8)])
            st.sync()
            st._pool.gate.clear()
            st.put(3, blk(77))
            out = st.get_many(list(range(8)))
            assert [b.records[0] for b in out] == [0, 1, 2, 77, 4, 5, 6, 7]
        finally:
            st._pool.gate.set()
            st.close()


class TestQuiesceOrdering:
    def test_sync_quiesces_before_fsync(self, tmp_path, monkeypatch):
        """The fsync barrier must observe a drained queue — otherwise the
        durability point would not cover queued writes."""
        import repro.emio.storage as storage_mod

        st = make_overlapped(FileStorage, tmp_path)
        events = []
        real_quiesce = st._pool.quiesce
        real_fsync = os.fsync

        def logged_quiesce():
            real_quiesce()
            events.append("quiesce")

        def logged_fsync(fd):
            events.append("fsync")
            return real_fsync(fd)

        st._pool.quiesce = logged_quiesce
        monkeypatch.setattr(storage_mod.os, "fsync", logged_fsync)
        try:
            st.put(0, blk(5))
            st.sync()
            assert events == ["quiesce", "fsync"]
            # The queued frame is on the platter (not just in the overlay).
            raw = st._platter_read(0, st.slot_bytes)
            assert raw[:4] != b"\x00\x00\x00\x00"
            assert st._pool.pending_in(0, st.slot_bytes) == []
        finally:
            st.close()

    def test_snapshot_and_restore_quiesce(self, tmp_path):
        """COW pins must reference platter-settled extents, and restore must
        not let queued post-snapshot writes land afterwards."""
        st = make_overlapped(FileStorage, tmp_path)
        try:
            st.put(0, blk(1))
            snap = st.snapshot()  # quiesces: put(0) settled
            st._pool.gate.clear()
            st.put(0, blk(2))
            st._pool.gate.set()
            st.restore(snap)  # quiesces: put(2)'s image settled, then undone
            st.sync()
            assert st.get(0).records == [1] * 4
        finally:
            st._pool.gate.set()
            st.close()


class TestPoolShutdown:
    def test_worker_error_surfaces_on_sync(self, tmp_path):
        st = make_overlapped(FileStorage, tmp_path)
        boom = OSError("platter gone")

        def broken_write(offset, data):
            raise boom

        st._platter_write = broken_write
        st.put(0, blk(1))
        with pytest.raises(OSError, match="platter gone"):
            st.sync()
        # The dead pool cleared its queues; close still closes the fd (it
        # re-raises the stored error exactly once more).
        with pytest.raises(OSError, match="platter gone"):
            st.close()
        assert st._closed

    def test_worker_error_unblocks_backpressure(self, tmp_path):
        """A submitter waiting on a full queue must not hang when the worker
        dies: the error wakes it and propagates."""
        st = make_overlapped(FileStorage, tmp_path, overlap_budget=1 << 16)
        slots = (1 << 16) // st.slot_bytes + 8

        def broken_write(offset, data):
            raise OSError("dead drive")

        st._platter_write = broken_write
        with pytest.raises(OSError, match="dead drive"):
            for t in range(slots):
                st.put(t, blk(t % 100))
            st.sync()
        with pytest.raises(OSError):
            st.close()

    def test_close_joins_worker_thread(self, tmp_path):
        st = make_overlapped(FileStorage, tmp_path)
        thread = st._pool._thread
        st.put(0, blk(1))
        st.close()
        assert not thread.is_alive()


class TestReadahead:
    def test_sequential_streak_fills_cache(self, tmp_path):
        st = make_overlapped(FileStorage, tmp_path)
        try:
            st.put_many([(t, blk(t)) for t in range(32)])
            st.sync()
            for t in range(8):
                assert st.get(t).records == [t] * 4
            st._pool.quiesce()
            # The streak armed readahead past the cursor...
            assert st._pool._ra_cache
            # ...and cached frames decode to the correct blocks.
            for t in range(8, 32):
                assert st.get(t).records == [t] * 4
        finally:
            st.close()

    def test_cache_invalidated_by_writes(self, tmp_path):
        """Any map mutation fences the cache: a readahead filled before an
        overwrite must never satisfy a read after it."""
        st = make_overlapped(FileStorage, tmp_path)
        try:
            st.put_many([(t, blk(t)) for t in range(16)])
            st.sync()
            for t in range(4):
                st.get(t)
            st._pool.quiesce()
            st.put(10, blk(99))
            assert not st._pool._ra_cache
            assert st.get(10).records == [99] * 4
        finally:
            st.close()

    def test_budget_bounds_buffered_bytes(self, tmp_path):
        st = make_overlapped(FileStorage, tmp_path, overlap_budget=1 << 16)
        try:
            pool = st._pool
            n = 4 * ((1 << 16) // st.slot_bytes)
            st.put_many([(t, blk(t % 100)) for t in range(n)])
            st.sync()
            for t in range(n):
                st.get(t)
                assert pool._ra_bytes <= pool.budget
        finally:
            st.close()


class TestSpecPlumbing:
    def test_with_overlap_round_trips_through_for_proc(self, tmp_path):
        spec = StorageSpec.create("file", tmp_path / "root").with_overlap(1 << 18)
        sub = spec.for_proc(2)
        assert sub.io_overlap and sub.overlap_budget == 1 << 18
        st = sub.make(0, B=4)
        try:
            assert st._pool is not None
            assert st._pool.budget == 1 << 18
        finally:
            st.close()

    def test_memory_spec_ignores_overlap(self):
        spec = StorageSpec().with_overlap(1 << 18)
        assert not spec.io_overlap

    def test_engine_threads_budget_from_machine(self):
        from repro.core.seqsim import SequentialEMSimulation
        from repro.core.simulator import build_params
        from repro.emio.storage import default_overlap_budget

        alg, v = make_sort()
        machine = MachineParams(p=1, M=1 << 18, D=4, B=16, b=32)
        sim = SequentialEMSimulation(
            alg, build_params(alg, machine, v=v), storage="file",
            io_overlap=True,
        )
        try:
            expected = default_overlap_budget(machine.M, machine.D)
            assert sim.storage_spec.io_overlap
            assert sim.storage_spec.overlap_budget == expected
            for disk in sim.array.disks:
                assert disk.storage._pool.budget == expected
        finally:
            sim.array.close_storage()
            sim.storage_spec.cleanup()
