"""Fault-injection and recovery tests.

Covers the fault model end to end: deterministic injection streams, the
faulty-disk device semantics (transient errors, checksummed corruption,
latency spikes, death), the disk array's retry/degraded-mode behaviour, and
the engines' checkpoint/recovery loop — including the hard acceptance
criteria: under a seeded fault plan both engines must produce outputs
*identical* to a fault-free run, and a killed run must resume from its last
checkpoint without re-running completed supersteps.

``FAULT_SEED`` (environment) shifts every plan seed, so CI can sweep a
small seed matrix without touching the tests.
"""

import os

import pytest

from repro.algorithms import CGMPermutation, CGMSampleSort
from repro.core.checkpoint import SimulationAborted, SuperstepCheckpoint
from repro.core.parsim import ParallelEMSimulation
from repro.core.seqsim import SequentialEMSimulation
from repro.core.simulator import build_params, simulate
from repro.emio.disk import Block
from repro.emio.diskarray import DiskArray
from repro.emio.faults import (
    ChecksumError,
    DataLossError,
    FaultPlan,
    RetryExhaustedError,
    RetryPolicy,
)
from repro.emio.linked import LinkedBuckets
from repro.emio.layout import RegionAllocator
from repro.params import MachineParams

from .helpers import RingShift

SEED = int(os.environ.get("FAULT_SEED", "0"))

SEQ = MachineParams(p=1, M=4096, D=4, B=32)
PAR = MachineParams(p=2, M=4096, D=4, B=32)


def sort_input(n=512, seed=7):
    import random

    rnd = random.Random(seed)
    return [rnd.randrange(10**6) for _ in range(n)]


# ---------------------------------------------------------------------------
# Injection streams
# ---------------------------------------------------------------------------


class TestFaultPlanDeterminism:
    def test_same_plan_same_draws(self):
        plan = FaultPlan(
            seed=SEED, read_error_rate=0.3, corruption_rate=0.2, latency_rate=0.1
        )
        a, b = plan.injector(0), plan.injector(0)
        draws_a = [(d.fail, d.corrupt, d.stall_ops) for d in
                   (a.draw(1, "read") for _ in range(200))]
        draws_b = [(d.fail, d.corrupt, d.stall_ops) for d in
                   (b.draw(1, "read") for _ in range(200))]
        assert draws_a == draws_b

    def test_streams_are_rate_independent(self):
        """Changing one rate must not shift the other fault decisions."""
        quiet = FaultPlan(seed=SEED, read_error_rate=0.3, latency_rate=0.0)
        noisy = FaultPlan(seed=SEED, read_error_rate=0.3, latency_rate=0.9)
        iq, inz = quiet.injector(), noisy.injector()
        fails_quiet = [iq.draw(0, "read").fail for _ in range(300)]
        fails_noisy = [inz.draw(0, "read").fail for _ in range(300)]
        assert fails_quiet == fails_noisy

    def test_procs_get_independent_streams(self):
        plan = FaultPlan(seed=SEED, read_error_rate=0.5)
        i0, i1 = plan.injector(0), plan.injector(1)
        s0 = [i0.draw(0, "read").fail for _ in range(100)]
        s1 = [i1.draw(0, "read").fail for _ in range(100)]
        assert s0 != s1

    def test_disks_get_independent_streams(self):
        plan = FaultPlan(seed=SEED, read_error_rate=0.5)
        inj = plan.injector()
        s0 = [inj.draw(0, "read").fail for _ in range(100)]
        s1 = [inj.draw(1, "read").fail for _ in range(100)]
        assert s0 != s1

    def test_death_at_access_count(self):
        plan = FaultPlan(seed=SEED, dead_disk=2, dead_after=5)
        inj = plan.injector(0)
        verdicts = [inj.draw(2, "read").die for _ in range(8)]
        assert verdicts == [False] * 5 + [True] * 3
        # Other disks and other processors are unaffected.
        assert not plan.injector(0).draw(1, "read").die
        assert not plan.injector(1).draw(2, "read").die


# ---------------------------------------------------------------------------
# Device + array semantics
# ---------------------------------------------------------------------------


class TestFaultyArray:
    def test_transient_reads_masked_by_retry(self):
        plan = FaultPlan(seed=SEED, read_error_rate=0.5)
        array = DiskArray(4, 8, faults=plan)
        for d in range(4):
            array.parallel_write([(d, 0, Block(records=[d]))])
        got = [array.parallel_read([(d, 0)])[0].records for d in range(4)]
        assert got == [[0], [1], [2], [3]]
        assert array.retry_reads > 0
        assert array.stall_ops > 0  # backoff was charged

    def test_transient_writes_masked_by_retry(self):
        plan = FaultPlan(seed=SEED, write_error_rate=0.5)
        array = DiskArray(2, 8, faults=plan)
        for t in range(20):
            array.parallel_write([(0, t, Block(records=[t]))])
        assert array.retry_writes > 0
        got = [array.parallel_read([(0, t)])[0].records for t in range(20)]
        assert got == [[t] for t in range(20)]

    def test_retry_budget_exhausts(self):
        plan = FaultPlan(seed=SEED, read_error_rate=1.0)
        array = DiskArray(1, 8, faults=plan, retry=RetryPolicy(max_retries=3))
        array_ok = DiskArray(1, 8)
        array_ok.parallel_write([(0, 0, Block(records=[1]))])
        array.disks[0]._tracks[0] = Block(records=[1])  # plant data directly
        with pytest.raises(RetryExhaustedError):
            array.parallel_read([(0, 0)])

    def test_corruption_detected_and_retried(self):
        plan = FaultPlan(seed=SEED, corruption_rate=0.5)
        array = DiskArray(2, 8, faults=plan)
        array.parallel_write([(0, 0, Block(records=[1, 2, 3]))])
        for _ in range(30):  # corrupted reads redraw; data is never wrong
            blk = array.parallel_read([(0, 0)])[0]
            assert blk.records == [1, 2, 3]
        assert array.injector.stats.checksum_errors > 0

    def test_corruption_silent_without_checksums(self):
        plan = FaultPlan(seed=SEED, corruption_rate=1.0, checksums=False)
        array = DiskArray(1, 8, faults=plan)
        array.parallel_write([(0, 0, Block(records=[1, 2, 3]))])
        blk = array.parallel_read([(0, 0)])[0]
        assert blk.records != [1, 2, 3]  # the failure checksums exist to stop

    def test_corruption_always_raises_with_checksums(self):
        plan = FaultPlan(seed=SEED, corruption_rate=1.0)
        array = DiskArray(1, 8, faults=plan, retry=RetryPolicy(max_retries=2))
        array.parallel_write([(0, 0, Block(records=[9]))])
        with pytest.raises(RetryExhaustedError) as ei:
            array.parallel_read([(0, 0)])
        assert isinstance(ei.value.__cause__, ChecksumError)

    def test_latency_spikes_counted(self):
        plan = FaultPlan(seed=SEED, latency_rate=0.5, latency_stall_ops=3)
        array = DiskArray(2, 8, faults=plan)
        for t in range(20):
            array.parallel_write([(0, t, Block(records=[]))])
        assert array.injector.stats.latency_spikes > 0
        assert (
            array.injector.stats.stall_ops
            == 3 * array.injector.stats.latency_spikes
        )

    def test_dead_disk_old_data_lost_new_writes_remapped(self):
        plan = FaultPlan(seed=SEED, dead_disk=1, dead_after=1)
        array = DiskArray(4, 8, faults=plan)
        array.parallel_write([(1, 0, Block(records=["old"]))])  # access #1
        with pytest.raises(DataLossError):
            array.parallel_read([(1, 0)])  # access #2 kills the drive
        assert array.dead_disks == {1}
        # Post-death writes to the dead disk's addresses are remapped ...
        array.parallel_write([(1, 5, Block(records=["new"]))])
        assert array.degraded_writes >= 1
        # ... and readable through the same logical address.
        assert array.parallel_read([(1, 5)])[0].records == ["new"]

    def test_degraded_writes_round_trip_with_extra_rounds(self):
        plan = FaultPlan(seed=SEED, dead_disk=3, dead_after=0)
        array = DiskArray(4, 8, faults=plan)
        with pytest.raises(DataLossError):
            array.parallel_read([(3, 0)])
        ops0 = array.parallel_ops
        array.parallel_write(
            [(d, 1, Block(records=[d])) for d in range(4)]
        )  # 4 logical disks onto 3 survivors: must take >= 2 physical rounds
        assert array.parallel_ops - ops0 >= 2
        got = sorted(b.records[0] for b in array.parallel_read([(d, 1) for d in range(3)]))
        got.append(array.parallel_read([(3, 1)])[0].records[0])
        assert sorted(got) == [0, 1, 2, 3]


class TestDegradedLinkedBuckets:
    def test_lemma2_balance_over_survivors(self):
        """With a dead drive, bucket writes use only the D-1 survivors and
        stay balanced over them (Lemma 2 at D-1)."""
        plan = FaultPlan(seed=SEED, dead_disk=2, dead_after=0)
        array = DiskArray(4, 8, faults=plan)
        with pytest.raises(DataLossError):
            array.parallel_read([(2, 0)])
        alloc = RegionAllocator(array)
        import random as _random

        buckets = LinkedBuckets(
            array, alloc, nbuckets=4, bucket_of=lambda d: d % 4,
            rng=_random.Random(SEED),
        )
        blocks = [Block(records=[i], dest=i % 4) for i in range(120)]
        buckets.append_blocks(blocks)
        for j in range(4):
            loads = buckets.bucket_disk_loads(j)
            assert loads[2] == 0  # nothing lands on the dead drive
            live = [loads[d] for d in (0, 1, 3)]
            assert max(live) - min(live) <= 0.5 * sum(live)  # no pile-up
        assert buckets.total_blocks == 120


# ---------------------------------------------------------------------------
# Engines under faults: outputs must be identical to the fault-free run
# ---------------------------------------------------------------------------


class TestEngineFaultTransparency:
    def test_sequential_sort_transient_faults(self):
        data = sort_input()
        baseline, _ = simulate(CGMSampleSort(list(data), v=8), SEQ, v=8, seed=3)
        plan = FaultPlan(
            seed=SEED, read_error_rate=0.05, write_error_rate=0.03,
            corruption_rate=0.02, latency_rate=0.03,
        )
        out, rep = simulate(
            CGMSampleSort(list(data), v=8), SEQ, v=8, seed=3,
            faults=plan, checkpoint=True,
        )
        assert out == baseline
        assert rep.faults is not None
        assert rep.faults.retry_ops > 0
        assert rep.faults.checkpoints_taken > 0
        # The ledger sees the supersteps' retries; the fault report also
        # covers init/checkpoint/output I/O, so it can only be larger.
        assert 0 < rep.ledger.total_retry_ops <= rep.faults.retry_ops

    def test_parallel_sort_transient_faults(self):
        data = sort_input()
        baseline, _ = simulate(CGMSampleSort(list(data), v=8), PAR, v=8, seed=3)
        plan = FaultPlan(
            seed=SEED, read_error_rate=0.05, write_error_rate=0.03,
            latency_rate=0.03,
        )
        out, rep = simulate(
            CGMSampleSort(list(data), v=8), PAR, v=8, seed=3,
            faults=plan, checkpoint=True,
        )
        assert out == baseline
        assert rep.faults.retry_ops > 0

    def test_sequential_disk_death_recovers(self):
        data = sort_input()
        baseline, _ = simulate(CGMSampleSort(list(data), v=8), SEQ, v=8, seed=3)
        plan = FaultPlan(seed=SEED + 1, read_error_rate=0.01,
                         dead_disk=2, dead_after=60)
        out, rep = simulate(
            CGMSampleSort(list(data), v=8), SEQ, v=8, seed=3,
            faults=plan, checkpoint=True,
        )
        assert out == baseline
        assert rep.faults.disks_died == 1
        assert rep.faults.recoveries >= 1
        assert rep.faults.degraded_writes > 0

    def test_parallel_disk_death_recovers(self):
        data = sort_input()
        baseline, _ = simulate(CGMSampleSort(list(data), v=8), PAR, v=8, seed=3)
        plan = FaultPlan(seed=SEED + 2, read_error_rate=0.02,
                         dead_disk=1, dead_after=50, dead_proc=1)
        out, rep = simulate(
            CGMSampleSort(list(data), v=8), PAR, v=8, seed=3,
            faults=plan, checkpoint=True,
        )
        assert out == baseline
        assert rep.faults.disks_died == 1
        assert rep.faults.recoveries >= 1

    def test_permutation_under_death(self):
        import random as _random

        vals = [f"v{i}" for i in range(256)]
        perm = list(range(256))
        _random.Random(1).shuffle(perm)
        baseline, _ = simulate(CGMPermutation(vals, perm, v=8), SEQ, v=8, seed=5)
        plan = FaultPlan(seed=SEED + 1, read_error_rate=0.01,
                         dead_disk=2, dead_after=60)
        out, rep = simulate(
            CGMPermutation(vals, perm, v=8), SEQ, v=8, seed=5,
            faults=plan, checkpoint=True,
        )
        assert out == baseline
        assert rep.faults.recoveries >= 1

    def test_fatal_without_checkpoint_aborts(self):
        data = sort_input()
        plan = FaultPlan(seed=SEED, dead_disk=0, dead_after=10)
        with pytest.raises(SimulationAborted, match="no checkpoint"):
            simulate(CGMSampleSort(list(data), v=8), SEQ, v=8, seed=3,
                     faults=plan)

    def test_recovery_budget_respected(self):
        data = sort_input()
        plan = FaultPlan(seed=SEED, dead_disk=0, dead_after=80)
        params = build_params(CGMSampleSort(list(data), v=8), SEQ, v=8)
        eng = SequentialEMSimulation(
            CGMSampleSort(list(data), v=8), params, seed=3,
            faults=plan, checkpoint=True, max_recoveries=0,
        )
        with pytest.raises(SimulationAborted, match="max_recoveries"):
            eng.run()


# ---------------------------------------------------------------------------
# Mid-run kill + resume_from_checkpoint
# ---------------------------------------------------------------------------


class CountingRingShift(RingShift):
    """RingShift that counts host-side superstep invocations, so a resumed
    run can prove it did not re-execute completed supersteps."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.superstep_calls = 0

    def superstep(self, ctx):
        self.superstep_calls += 1
        super().superstep(ctx)


class TestCheckpointResume:
    def _kill_and_resume_seq(self):
        v = 8
        alg = CountingRingShift(payload_size=4, rounds=3)
        machine = MachineParams(p=1, M=4 * alg.context_size(), D=4, B=16)
        params = build_params(CountingRingShift(payload_size=4, rounds=3),
                             machine, v=v)
        baseline, base_rep = SequentialEMSimulation(
            CountingRingShift(payload_size=4, rounds=3), params, seed=2
        ).run()
        plan = FaultPlan(seed=SEED + 3, dead_disk=0, dead_after=40)
        doomed = SequentialEMSimulation(
            CountingRingShift(payload_size=4, rounds=3), params, seed=2,
            faults=plan, checkpoint=True, max_recoveries=0,
        )
        with pytest.raises(SimulationAborted) as ei:
            doomed.run()
        ckpt = ei.value.checkpoint
        assert isinstance(ckpt, SuperstepCheckpoint)
        return v, params, baseline, base_rep, ckpt

    def test_sequential_resume_reproduces_outputs(self):
        v, params, baseline, base_rep, ckpt = self._kill_and_resume_seq()
        assert ckpt.step >= 1  # the kill happened mid-run, not at the start
        fresh_alg = CountingRingShift(payload_size=4, rounds=3)
        fresh = SequentialEMSimulation(fresh_alg, params, seed=2)
        out, rep = fresh.resume_from_checkpoint(ckpt)
        assert out == baseline
        assert rep.faults.resumed_from_step == ckpt.step
        # Completed supersteps were NOT re-run: the fresh algorithm object
        # only saw the remaining supersteps.
        total_steps = base_rep.num_supersteps
        assert fresh_alg.superstep_calls == (total_steps - ckpt.step) * v
        # ... but the restored report still covers the whole run.
        assert rep.num_supersteps == total_steps

    def test_parallel_resume_reproduces_outputs(self):
        v = 8
        machine = MachineParams(p=2, M=4096, D=4, B=32)
        data = sort_input()
        params = build_params(CGMSampleSort(list(data), v=v), machine, v=v)
        baseline, _ = ParallelEMSimulation(
            CGMSampleSort(list(data), v=v), params, seed=3
        ).run()
        plan = FaultPlan(seed=SEED + 2, dead_disk=1, dead_after=50, dead_proc=1)
        doomed = ParallelEMSimulation(
            CGMSampleSort(list(data), v=v), params, seed=3,
            faults=plan, checkpoint=True, max_recoveries=0,
        )
        with pytest.raises(SimulationAborted) as ei:
            doomed.run()
        ckpt = ei.value.checkpoint
        assert ckpt is not None and ckpt.nprocs == 2
        fresh = ParallelEMSimulation(CGMSampleSort(list(data), v=v), params, seed=3)
        out, rep = fresh.resume_from_checkpoint(ckpt)
        assert out == baseline
        assert rep.faults.resumed_from_step == ckpt.step

    def test_checkpoint_proc_count_validated(self):
        data = sort_input()
        params = build_params(CGMSampleSort(list(data), v=8), SEQ, v=8)
        bogus = SuperstepCheckpoint(
            step=1, rng_state=None, proc_states=[b"", b""],
            proc_incoming=[None, None], report_blob=b"",
        )
        from repro.params import ParameterError

        with pytest.raises(ParameterError, match="processors"):
            SequentialEMSimulation(
                CGMSampleSort(list(data), v=8), params, seed=3
            ).resume_from_checkpoint(bogus)

    def test_checkpoint_size_reporting(self):
        _, _, _, _, ckpt = self._kill_and_resume_seq()
        assert ckpt.size_bytes() > 0
        assert ckpt.nprocs == 1
