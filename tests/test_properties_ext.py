"""Extended property-based tests for the newer components."""

import bisect
import random as stdrandom

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.geometry.genenvelope import envelope_of_segments
from repro.algorithms.geometry.segtree import SegmentTree
from repro.algorithms.geometry.triangulate import delaunay_triangulation
from repro.algorithms.multisearch import CGMMultisearch
from repro.algorithms.prefix import CGMPrefixSums
from repro.bsp.runner import run_reference
from repro.core.parsim import ParallelEMSimulation
from repro.core.simulator import build_params
from repro.params import MachineParams

from .helpers import MultiRoundAccumulate

slow = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@given(
    ivs=st.lists(
        st.tuples(
            st.floats(0, 1000, allow_nan=False),
            st.floats(0, 500, allow_nan=False),
        ).map(lambda t: (t[0], t[0] + t[1])),
        min_size=0,
        max_size=30,
    ),
    xs=st.lists(st.floats(-100, 1600, allow_nan=False), min_size=1, max_size=20),
)
@slow
def test_segment_tree_matches_bruteforce(ivs, xs):
    tree = SegmentTree([a for a, _b in ivs] + [b for _a, b in ivs])
    for i, (a, b) in enumerate(ivs):
        tree.insert(a, b, i)
    for x in xs:
        want = sorted(i for i, (a, b) in enumerate(ivs) if a <= x <= b)
        assert tree.stab(x) == want


@given(
    segs=st.lists(
        st.tuples(
            st.floats(0, 90, allow_nan=False),
            st.floats(0, 100, allow_nan=False),
            st.floats(1, 60, allow_nan=False),
            st.floats(0, 100, allow_nan=False),
        ).map(lambda t: (t[0], t[1], t[0] + t[2], t[3])),
        min_size=1,
        max_size=15,
    ),
    data=st.data(),
)
@slow
def test_general_envelope_pointwise_minimum(segs, data):
    pieces = envelope_of_segments(list(enumerate(segs)), segs)

    def y_at(seg, x):
        x1, y1, x2, y2 = seg
        return y1 + (y2 - y1) * (x - x1) / (x2 - x1)

    for xa, xb, sid in pieces:
        if xb - xa < 5e-9:
            continue
        x = data.draw(st.floats(xa + 1e-9, xb - 1e-9), label="sample x")
        active = [y_at(s, x) for s in segs if s[0] <= x <= s[2]]
        assert active
        assert y_at(segs[sid], x) <= min(active) + 1e-6


@given(
    keys=st.lists(st.integers(0, 10_000), min_size=1, max_size=60).map(sorted),
    queries=st.lists(st.integers(-100, 11_000), min_size=1, max_size=20),
)
@slow
def test_multisearch_predecessors(keys, queries):
    v = 4
    out, _ = run_reference(CGMMultisearch(keys, queries, v), v)
    got = {}
    for part in out:
        got.update(dict(part))
    for qi, q in enumerate(queries):
        assert got[qi] == bisect.bisect_right(keys, q) - 1


@given(vals=st.lists(st.integers(-1000, 1000), max_size=80))
@slow
def test_prefix_sums_property(vals):
    v = 4
    out, _ = run_reference(CGMPrefixSums(vals, v), v)
    flat = [x for part in out for x in part]
    acc, want = 0, []
    for x in vals:
        acc += x
        want.append(acc)
    assert flat == want


@given(
    p=st.sampled_from([1, 2, 4]),
    D=st.integers(1, 3),
    seed=st.integers(0, 500),
)
@settings(max_examples=12, deadline=None)
def test_parsim_transparency_random_params(p, D, seed):
    v = 8
    alg = MultiRoundAccumulate(rounds=2)
    ref, _ = run_reference(MultiRoundAccumulate(rounds=2), v)
    machine = MachineParams(p=p, M=2 * alg.context_size(), D=D, B=16, b=16)
    params = build_params(MultiRoundAccumulate(rounds=2), machine, v=v, k=2)
    out, _ = ParallelEMSimulation(
        MultiRoundAccumulate(rounds=2), params, seed=seed
    ).run()
    assert out == ref


@given(seed=st.integers(0, 300), n=st.integers(4, 30))
@settings(max_examples=15, deadline=None)
def test_delaunay_circumcircles_empty(seed, n):
    rng = stdrandom.Random(seed)
    pts = list({(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(n)})
    if len(pts) < 3:
        return
    try:
        tris = delaunay_triangulation(pts)
    except ValueError:
        return  # degenerate draw
    from repro.algorithms.geometry.triangulate import circumcircle

    for a, b, c in tris:
        ux, uy, r2 = circumcircle(pts[a], pts[b], pts[c])
        for i, q in enumerate(pts):
            if i in (a, b, c):
                continue
            assert (q[0] - ux) ** 2 + (q[1] - uy) ** 2 >= r2 * (1 - 1e-7)


# -- FileStorage free-list allocator (DESIGN §9, §12) ---------------------------
#
# The slot allocator is pure metadata: allocation never depends on written
# bytes, so its transitions are identical on the synchronous and overlapped
# planes.  Two angles: a model-based test through the public put/put_many/
# discard/snapshot API, and a direct best-fit/coalescing check on the raw
# _alloc/_release pair.


def _check_free_list(stg, extra_extents=()):
    """Structural invariants that must hold after *any* operation sequence:
    paired free maps consistent, no extent overlap, everything below the
    bump pointer, free runs fully coalesced and never touching the tail."""
    free = sorted((base, size) for base, size in stg._free_start.items())
    assert stg._free_end == {base + size: base for base, size in free}
    covered = [(base, base + size, "free") for base, size in free]
    for track, (base, nslots, _len, _gen) in stg._map.items():
        covered.append((base, base + nslots, f"track {track}"))
    for base, nslots in extra_extents:
        covered.append((base, base + nslots, "raw alloc"))
    covered.sort()
    for (_alo, ahi, awho), (blo, _bhi, bwho) in zip(covered, covered[1:]):
        assert ahi <= blo, f"extent overlap: {awho} vs {bwho}"
    assert all(size > 0 for _base, size in free)
    assert all(hi <= stg._next_slot for _lo, hi, _who in covered)
    ends = {base + size for base, size in free}
    assert not (ends & set(stg._free_start)), "adjacent free runs not merged"
    assert stg._next_slot not in ends, "tail free run not returned to bump"


@st.composite
def _storage_ops(draw):
    ops = []
    for _ in range(draw(st.integers(1, 25))):
        kind = draw(
            st.sampled_from(["put", "put", "put_many", "delete", "discard",
                             "snapshot"])
        )
        if kind == "put":
            ops.append(("put", draw(st.integers(0, 9)), draw(st.integers(0, 120))))
        elif kind == "put_many":
            items = draw(
                st.lists(
                    st.tuples(st.integers(0, 9), st.integers(0, 120)),
                    min_size=1,
                    max_size=6,
                )
            )
            ops.append(("put_many", items))
        elif kind == "delete":
            ops.append(("delete", draw(st.integers(0, 9))))
        elif kind == "discard":
            ops.append(("discard", draw(st.integers(0, 9))))
        else:
            ops.append(("snapshot",))
    return ops


@given(ops=_storage_ops(), overlap=st.booleans())
@slow
def test_file_storage_free_list_model(ops, overlap):
    import os
    import tempfile

    from repro.emio.disk import Block
    from repro.emio.storage import FileStorage

    def block(track, size):
        # Payload length scales with ``size`` so slot-run lengths vary and
        # overwrites exercise the in-place / realloc split in _place().
        return Block(records=list(range(track, track + size)))

    with tempfile.TemporaryDirectory() as root:
        stg = FileStorage(
            os.path.join(root, "d0.track"), B=128, slot_bytes=64,
            io_overlap=overlap, overlap_budget=1 << 16,
        )
        try:
            model = {}
            for op in ops:
                if op[0] == "put":
                    _kind, track, size = op
                    stg.put(track, block(track, size))
                    model[track] = list(range(track, track + size))
                elif op[0] == "put_many":
                    stg.put_many([(t, block(t, s)) for t, s in op[1]])
                    for t, s in op[1]:
                        model[t] = list(range(t, t + s))
                elif op[0] == "delete":
                    stg.put(op[1], None)
                    model.pop(op[1], None)
                elif op[0] == "discard":
                    stg.discard(op[1])
                    model.pop(op[1], None)
                else:
                    stg.snapshot()
                _check_free_list(stg)
            for track in range(10):
                got = stg.get(track)
                if track in model:
                    assert got is not None and list(got.records) == model[track]
                else:
                    assert got is None
        finally:
            stg.close()


@given(data=st.data())
@slow
def test_allocator_best_fit_and_coalescing(data):
    import os
    import tempfile

    from repro.emio.storage import FileStorage

    with tempfile.TemporaryDirectory() as root:
        stg = FileStorage(os.path.join(root, "d0.track"), B=4, slot_bytes=64)
        try:
            live = []
            for _ in range(data.draw(st.integers(1, 40))):
                if live and data.draw(st.booleans()):
                    idx = data.draw(st.integers(0, len(live) - 1))
                    base, nslots = live.pop(idx)
                    stg._release(base, nslots)
                else:
                    need = data.draw(st.integers(1, 5))
                    fits = [
                        (size, base)
                        for base, size in stg._free_start.items()
                        if size >= need
                    ]
                    tail = stg._next_slot
                    base = stg._alloc(need)
                    if fits:
                        # Best fit: smallest sufficient run, lowest base on ties.
                        assert base == min(fits)[1]
                    else:
                        assert base == tail, "bump pointer moved before alloc"
                    live.append((base, need))
                _check_free_list(stg, extra_extents=live)
            for base, nslots in live:
                stg._release(base, nslots)
            _check_free_list(stg)
            # Releasing everything must collapse to the empty heap: the
            # neighbour-coalescing maps merge all runs and the tail trim
            # hands the final run back to the bump pointer.
            assert stg._free_start == {} and stg._next_slot == 0
        finally:
            stg.close()

# -- buffer tree + bulk priority queue (repro.baselines.buffertree) -----------

_bt_machines = st.sampled_from([
    MachineParams(p=1, M=32, D=1, B=2, b=2),
    MachineParams(p=1, M=64, D=2, B=4, b=4),
    MachineParams(p=1, M=128, D=3, B=4, b=4),
    MachineParams(p=1, M=256, D=2, B=8, b=8),
])


@slow
@given(machine=_bt_machines, data=st.lists(st.integers(0, 50), max_size=300))
def test_buffer_tree_matches_sorted_oracle(machine, data):
    """Inserts against the sorted-list oracle, structural invariants after
    every phase, a fully-emptied buffer plane after flush, and a counted-I/O
    ledger that only counts up."""
    from repro.baselines import BufferTree

    with BufferTree(machine) as tree:
        prev_ops = 0
        for x in data:
            tree.insert(x)
            assert tree.io_ops >= prev_ops  # monotone counted cost
            prev_ops = tree.io_ops
        assert len(tree) == len(data)
        tree.check_invariants()
        assert tree.items() == sorted(data)
        tree.check_invariants()
        # items() forced a full flush: the buffer plane must be empty now —
        # no staged root ops, no buffered blocks anywhere in the tree.
        assert not tree._staging
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert not node.buf_addrs
            if not node.leaf:
                stack.extend(node.children)


@slow
@given(
    machine=_bt_machines,
    data=st.lists(st.integers(0, 50), min_size=1, max_size=200),
)
def test_buffer_tree_leftmost_drain_is_globally_sorted(machine, data):
    """pop_leftmost_leaf (the PQ refill primitive) emits the tree in
    globally non-decreasing (key, seq) order and keeps every structural
    invariant between pops."""
    from repro.baselines import BufferTree

    with BufferTree(machine) as tree:
        tree.bulk_insert(data)
        drained = []
        for _ in range(len(data) + 5):
            if not len(tree):
                break
            batch = tree.pop_leftmost_leaf()
            assert batch, "non-empty tree must yield a non-empty leaf"
            tree.check_invariants()
            drained.extend(batch)
        assert not len(tree)
        marks = [(k, seq) for k, seq, _payload in drained]
        assert marks == sorted(marks)
        assert [payload for _k, _s, payload in drained] == sorted(data)


@slow
@given(
    machine=_bt_machines,
    steps=st.lists(
        st.one_of(
            st.lists(st.integers(0, 30), min_size=1, max_size=40),
            st.integers(1, 25),
        ),
        max_size=12,
    ),
)
def test_buffer_tree_pq_matches_sorted_model(machine, steps):
    """Model-checked bulk_push / pop_min interleavings: the PQ tracks a
    sorted-list model exactly (stable on duplicate keys), with a monotone
    counted-I/O ledger."""
    from repro.baselines import BufferTreePQ

    model = []
    prev_ops = 0
    with BufferTreePQ(machine) as pq:
        for step in steps:
            if isinstance(step, list):
                pq.bulk_push(step)
                for x in step:
                    bisect.insort(model, x)
            else:
                want, model = model[:step], model[step:]
                assert pq.bulk_pop(step) == want
            assert len(pq) == len(model)
            assert pq.io_ops >= prev_ops
            prev_ops = pq.io_ops
        if model:
            assert pq.peek_min() == model[0]
        assert pq.bulk_pop(len(model)) == model
        assert len(pq) == 0
