"""Tests for CGM prefix sums and the deterministic write schedules."""

import operator
import random

import pytest

from repro import workloads
from repro.algorithms.prefix import CGMPrefixSums
from repro.bsp.runner import run_reference
from repro.core.seqsim import SequentialEMSimulation
from repro.core.simulator import build_params, simulate
from repro.emio.disk import Block
from repro.emio.diskarray import DiskArray
from repro.emio.layout import RegionAllocator
from repro.emio.linked import LinkedBuckets
from repro.params import MachineParams

MACHINE = MachineParams(p=1, M=1 << 14, D=2, B=32, b=32)


def flat(outputs):
    return [x for part in outputs for x in part]


class TestPrefixSums:
    @pytest.mark.parametrize("n,v", [(1, 1), (7, 4), (100, 4), (64, 8)])
    def test_addition(self, n, v):
        vals = workloads.uniform_keys(n, seed=n, hi=1000)
        out, _ = run_reference(CGMPrefixSums(vals, v), v)
        want, acc = [], 0
        for x in vals:
            acc += x
            want.append(acc)
        assert flat(out) == want

    def test_max_operator(self):
        vals = [3, 1, 4, 1, 5, 9, 2, 6]
        out, _ = run_reference(
            CGMPrefixSums(vals, 4, op=max, identity=float("-inf")), 4
        )
        assert flat(out) == [3, 3, 4, 4, 5, 9, 9, 9]

    def test_noncommutative_concat(self):
        vals = list("abcdefgh")
        out, _ = run_reference(
            CGMPrefixSums(vals, 4, op=operator.add, identity=""), 4
        )
        assert flat(out) == ["a", "ab", "abc", "abcd", "abcde", "abcdef",
                             "abcdefg", "abcdefgh"]

    def test_constant_supersteps(self):
        _, ledger = run_reference(CGMPrefixSums(list(range(32)), 4), 4)
        assert ledger.num_supersteps == CGMPrefixSums.LAMBDA

    def test_empty_share(self):
        # n < v: some vps hold nothing.
        out, _ = run_reference(CGMPrefixSums([5, 6], 4), 4)
        assert flat(out) == [5, 11]

    def test_em_sequential_matches(self):
        vals = workloads.uniform_keys(128, seed=2, hi=100)
        out, report = simulate(CGMPrefixSums(vals, 4), MACHINE, v=4)
        want, acc = [], 0
        for x in vals:
            acc += x
            want.append(acc)
        assert flat(out) == want
        assert report.io_ops > 0

    def test_em_parallel_matches(self):
        vals = workloads.uniform_keys(96, seed=3, hi=100)
        machine = MachineParams(p=2, M=1 << 14, D=2, B=32, b=32)
        out, _ = simulate(CGMPrefixSums(vals, 4), machine, v=4, k=2)
        want, acc = [], 0
        for x in vals:
            acc += x
            want.append(acc)
        assert flat(out) == want


class TestBalanceSchedule:
    def make_store(self, D, v, schedule):
        array = DiskArray(D, 8)
        alloc = RegionAllocator(array)
        return LinkedBuckets(
            array, alloc, D, lambda d: d * D // v, random.Random(0),
            schedule=schedule,
        )

    def test_balance_is_perfect_on_uniform_traffic(self):
        D, v = 4, 16
        store = self.make_store(D, v, "balance")
        dests = [i % v for i in range(320)]
        store.append_blocks(
            [Block(records=[], dest=d, src=0, msg=i) for i, d in enumerate(dests)]
        )
        assert store.max_load_ratio() == 1.0

    def test_balance_beats_random_on_adversarial_traffic(self):
        D = 8
        # All blocks of one cycle in one bucket (the LEM2-ADV pattern).
        def ratio(schedule):
            store = self.make_store(D, D, schedule)
            blocks = []
            for cyc in range(64):
                blocks.extend(
                    Block(records=[], dest=cyc % D, src=0, msg=i)
                    for i in range(D)
                )
            store.append_blocks(blocks)
            return store.max_load_ratio()

        assert ratio("balance") == 1.0
        assert ratio("static") == 1.0  # this pattern is easy for static
        assert ratio("random") <= 2.0

    def test_balance_is_deterministic(self):
        D, v = 4, 16
        tables = []
        for seed in (1, 2):
            array = DiskArray(D, 8)
            store = LinkedBuckets(
                array, RegionAllocator(array), D, lambda d: d * D // v,
                random.Random(seed), schedule="balance",
            )
            store.append_blocks(
                [Block(records=[], dest=i % v, src=0, msg=i) for i in range(60)]
            )
            tables.append(store.table)
        assert tables[0] == tables[1]

    def test_unknown_schedule_rejected(self):
        array = DiskArray(2, 8)
        with pytest.raises(ValueError):
            LinkedBuckets(
                array, RegionAllocator(array), 2, lambda d: d,
                random.Random(0), schedule="bogus",
            )

    def test_engine_accepts_write_schedule(self):
        from tests.helpers import AllToAllExchange

        alg = AllToAllExchange()
        params = build_params(alg, MACHINE.with_(M=2 * alg.context_size()), v=8, k=2)
        ref, _ = run_reference(AllToAllExchange(), 8)
        for schedule in ("random", "rotate", "static", "balance"):
            out, _ = SequentialEMSimulation(
                AllToAllExchange(), params, write_schedule=schedule
            ).run()
            assert out == ref

    def test_balance_makes_simulation_deterministic(self):
        """The paper's CGM determinization: identical runs regardless of seed."""
        from tests.helpers import AllToAllExchange

        alg = AllToAllExchange()
        params = build_params(alg, MACHINE.with_(M=2 * alg.context_size()), v=8, k=2)
        reports = []
        for seed in (11, 22):
            _, report = SequentialEMSimulation(
                AllToAllExchange(), params, seed=seed, write_schedule="balance"
            ).run()
            reports.append(
                [(s.phases.total, s.message_blocks) for s in report.supersteps]
            )
        assert reports[0] == reports[1]
