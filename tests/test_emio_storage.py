"""Unit tests for the block-storage planes (:mod:`repro.emio.storage`).

The golden suite (``test_storage_golden.py``) proves plane equivalence end
to end; these tests pin the mechanisms that make it work — slot-run
allocation and neighbour-coalescing frees, copy-on-write pinning around
snapshots, crash-reattach via snapshot/restore, the storage-dir marker
protocol — plus the failure modes (corrupt images, mismatched slot sizes,
foreign directories) that must surface as :class:`DiskError`.
"""

import os
import pickle

import pytest

from repro.emio.disk import Block, DiskError
from repro.emio.storage import (
    STORAGE_MARKER,
    FileStorage,
    MemoryStorage,
    MmapStorage,
    StorageSpec,
    resolve_storage,
)

IMPLS = (FileStorage, MmapStorage)


def blk(tag, n=1):
    return Block(records=[tag] * n, dest=tag)


def make(impl, tmp_path, **kw):
    kw.setdefault("slot_bytes", 64)
    return impl(tmp_path / f"{impl.__name__}.dat", B=4, **kw)


class TestMemoryStorage:
    def test_identity_preserving(self):
        s = MemoryStorage()
        b = blk(1)
        assert s.put(7, b) is False
        assert s.get(7) is b  # the very same object, no pickle round-trip
        assert s.put(7, blk(2)) is True

    def test_none_value_keeps_key_but_hides_track(self):
        s = MemoryStorage()
        s.put(3, None)
        assert list(s.tracks()) == []
        assert 3 in s.tracks_view()
        assert s.discard(3) is False  # a None placeholder is not a block

    def test_snapshot_is_none_and_restore_refuses(self):
        s = MemoryStorage()
        assert s.snapshot() is None
        with pytest.raises(DiskError):
            s.restore(None)

    def test_byte_counters_stay_zero(self):
        s = MemoryStorage()
        s.put(1, blk(1))
        s.get(1)
        assert (s.read_bytes, s.write_bytes) == (0, 0)


@pytest.mark.parametrize("impl", IMPLS)
class TestFilePlaneBasics:
    def test_pickle_roundtrip_not_identity(self, impl, tmp_path):
        s = make(impl, tmp_path)
        b = blk(1, n=3)
        assert s.put(5, b) is False
        got = s.get(5)
        assert got == b and got is not b
        s.close()

    def test_put_get_discard_presence(self, impl, tmp_path):
        s = make(impl, tmp_path)
        assert s.get(9) is None
        assert s.discard(9) is False
        s.put(9, blk(1))
        assert 9 in list(s.tracks())
        assert s.put(9, None) is True  # deletion via None, like the dict plane
        assert s.get(9) is None
        s.close()

    def test_sparse_shadow_tracks(self, impl, tmp_path):
        """Track ids from the shadow namespace (1 << 40) must not imply a
        positional file offset — the map makes addressing explicit."""
        s = make(impl, tmp_path)
        shadow = (1 << 40) + 17
        s.put(shadow, blk(2))
        assert s.get(shadow) == blk(2)
        assert os.path.getsize(s.path) < (1 << 20)
        s.close()

    def test_read_write_byte_counters(self, impl, tmp_path):
        s = make(impl, tmp_path)
        s.put(1, blk(1))
        wrote = s.write_bytes
        assert wrote > 0
        s.peek(1)
        assert s.read_bytes == 0  # peek is free of observability accounting
        s.get(1)
        assert s.read_bytes > 0
        s.close()

    def test_oversized_image_spans_slots(self, impl, tmp_path):
        s = make(impl, tmp_path)
        big = Block(records=list(range(200)))
        s.put(1, big)
        assert s._map[1][1] > 1
        assert s.get(1) == big
        s.close()


class TestSlotAllocation:
    def test_adjacent_frees_coalesce_and_shrink_tail(self, tmp_path):
        s = make(FileStorage, tmp_path)
        for t in (1, 2, 3):
            s.put(t, blk(t))
        ext = {t: s._map[t][:2] for t in (1, 2, 3)}
        # Free the middle run first, then its neighbours: every release path
        # (lone, merge-with-successor, merge-with-predecessor-at-tail) fires.
        s.discard(2)
        assert s._free_start == {ext[2][0]: ext[2][1]}
        s.discard(1)
        assert s._free_start == {ext[1][0]: ext[1][1] + ext[2][1]}
        s.discard(3)
        assert s._free_start == {} and s._free_end == {}
        assert s._next_slot == ext[1][0]
        s.close()

    def test_freed_run_is_reused_best_fit(self, tmp_path):
        s = make(FileStorage, tmp_path)
        big = Block(records=list(range(200)))
        s.put(1, big)        # multi-slot run
        s.put(10, blk(10))   # guard: keeps the two holes from coalescing
        s.put(2, blk(2))     # short run
        s.put(11, blk(11))   # guard: keeps the short hole off the file tail
        hole_big, hole_small = s._map[1][0], s._map[2][0]
        s.discard(1)
        s.discard(2)
        s.put(4, blk(4))
        # Best fit picks the short hole, not the first (larger) one.
        assert s._map[4][0] == hole_small
        s.put(5, big)
        assert s._map[5][0] == hole_big
        s.close()

    def test_split_remainder_stays_free(self, tmp_path):
        s = make(FileStorage, tmp_path)
        big = Block(records=list(range(200)))
        s.put(1, big)
        base, nslots = s._map[1][:2]
        s.put(2, blk(2))  # tail guard
        s.discard(1)
        s.put(3, blk(3))  # short run carved from the front of the hole
        carved = s._map[3][1]
        assert s._map[3][0] == base
        assert s._free_start == {base + carved: nslots - carved}
        s.close()

    def test_same_size_overwrite_in_place(self, tmp_path):
        s = make(FileStorage, tmp_path)
        s.put(1, blk(1))
        base = s._map[1][0]
        s.put(1, blk(9))
        assert s._map[1][0] == base
        assert s.get(1) == blk(9)
        s.close()


class TestSnapshotRestore:
    @pytest.mark.parametrize("impl", IMPLS)
    def test_reattach_after_close(self, impl, tmp_path):
        """The crash-resume path: snapshot, drop the process state, reopen
        the same file, restore — every track readable again."""
        s = make(impl, tmp_path)
        for t in range(4):
            s.put(t, blk(t, n=2))
        s.sync()
        snap = s.snapshot()
        path = s.path
        s.close()

        r = impl(path, B=4, slot_bytes=64)
        r.restore(snap)
        for t in range(4):
            assert r.get(t) == blk(t, n=2)
        r.close()

    def test_snapshot_is_picklable_metadata(self, tmp_path):
        s = make(FileStorage, tmp_path)
        s.put(1, blk(1))
        snap = s.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap
        s.close()

    def test_restore_none_refuses(self, tmp_path):
        s = make(FileStorage, tmp_path)
        with pytest.raises(DiskError, match="no storage"):
            s.restore(None)
        s.close()

    def test_restore_slot_size_mismatch_refuses(self, tmp_path):
        s = make(FileStorage, tmp_path)
        snap = s.snapshot()
        s.close()
        other = FileStorage(tmp_path / "other.dat", B=4, slot_bytes=128)
        with pytest.raises(DiskError, match="slot size"):
            other.restore(snap)
        other.close()

    def test_cow_pinning_preserves_snapshot_reads(self, tmp_path):
        """Overwrites after a snapshot go to fresh slots, so a checkpoint
        that references the snapshot reads the *old* images."""
        s = make(FileStorage, tmp_path)
        s.put(1, blk(1))
        ext = tuple(s._map[1][:2])
        snap = s.snapshot()
        s.put(1, blk(8))
        assert tuple(s._map[1][:2])[0] != ext[0]
        assert ext in s._deferred  # released, but parked until superseded
        s.sync()

        r = FileStorage(s.path, B=4, slot_bytes=64)
        r.restore(snap)
        assert r.get(1) == blk(1)  # the pre-overwrite image
        r.close()
        s.close()

    def test_superseding_snapshot_releases_deferred(self, tmp_path):
        """The pin window is two snapshots deep (scrub's fallback barrier
        must stay readable), so a deferred extent frees only once TWO
        later snapshots no longer pin it."""
        s = make(FileStorage, tmp_path)
        s.put(1, blk(1))
        s.snapshot()
        s.put(1, blk(8))
        assert s._deferred
        s.snapshot()
        assert s._deferred  # still pinned by the previous snapshot
        s.snapshot()
        assert s._deferred == []
        s.close()

    def test_restored_extents_are_pinned(self, tmp_path):
        """After restore the checkpoint stays the rollback target: further
        overwrites must not scribble over the restored extents."""
        s = make(FileStorage, tmp_path)
        s.put(1, blk(1))
        snap = s.snapshot()
        s.close()
        r = FileStorage(s.path, B=4, slot_bytes=64)
        r.restore(snap)
        base = r._map[1][0]
        r.put(1, blk(9))
        assert r._map[1][0] != base
        r.close()


class TestCorruption:
    def test_corrupt_length_prefix_raises(self, tmp_path):
        s = make(FileStorage, tmp_path)
        s.put(1, blk(1))
        base = s._map[1][0]
        with open(s.path, "r+b") as fh:
            fh.seek(base * s.slot_bytes)
            fh.write(b"\xff" * 8)
        with pytest.raises(DiskError, match="corrupt image"):
            s.get(1)
        s.close()


class TestTracksView:
    def test_dict_flavoured_window(self, tmp_path):
        s = make(FileStorage, tmp_path)
        view = s.tracks_view()
        assert len(view) == 0
        view[4] = blk(4)
        assert 4 in view
        assert view[4] == blk(4)
        assert view.get(5) is None
        assert view.get(5, "dflt") == "dflt"
        assert len(view) == 1
        s.close()


class TestStorageSpec:
    def test_memory_spec_has_no_root(self):
        spec = StorageSpec.create("memory")
        assert (spec.kind, spec.root, spec.owned) == ("memory", None, False)
        assert spec.for_proc(3) is spec
        assert isinstance(spec.make(0, B=4), MemoryStorage)

    def test_unknown_kind_refused(self):
        with pytest.raises(DiskError, match="unknown storage kind"):
            StorageSpec.create("cloud")

    def test_owned_tempdir_cleanup(self):
        spec = StorageSpec.create("file")
        assert spec.owned and os.path.isdir(spec.root)
        assert os.path.exists(os.path.join(spec.root, STORAGE_MARKER))
        spec.cleanup()
        assert not os.path.exists(spec.root)

    def test_explicit_dir_survives_cleanup(self, tmp_path):
        root = tmp_path / "tracks"
        spec = StorageSpec.create("file", root)
        assert not spec.owned
        spec.cleanup()
        assert os.path.isdir(root)

    def test_foreign_nonempty_dir_refused_with_path(self, tmp_path):
        root = tmp_path / "precious"
        root.mkdir()
        (root / "thesis.tex").write_text("irreplaceable")
        with pytest.raises(DiskError) as exc_info:
            StorageSpec.create("file", root)
        assert str(root) in str(exc_info.value)
        assert (root / "thesis.tex").read_text() == "irreplaceable"

    def test_marked_dir_is_reused(self, tmp_path):
        root = tmp_path / "tracks"
        first = StorageSpec.create("file", root)
        first.make(0, B=4).close()
        again = StorageSpec.create("file", root)  # crash-resume reclaim
        assert again.root == first.root

    def test_file_path_refused(self, tmp_path):
        f = tmp_path / "afile"
        f.write_text("x")
        with pytest.raises(DiskError, match="not a directory"):
            StorageSpec.create("file", f)

    def test_for_proc_claims_marked_subdir(self, tmp_path):
        spec = StorageSpec.create("file", tmp_path / "root")
        sub = spec.for_proc(1)
        assert sub.root == spec.proc_root(1)
        assert not sub.owned  # engine root owns cleanup, workers never do
        assert os.path.exists(os.path.join(sub.root, STORAGE_MARKER))

    def test_resolve_storage_passthrough_and_create(self, tmp_path):
        spec = StorageSpec.create("file", tmp_path / "r")
        assert resolve_storage(spec, None) is spec
        assert resolve_storage(None, None).kind == "memory"
        assert resolve_storage("mmap", tmp_path / "m").kind == "mmap"
