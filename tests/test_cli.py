"""Tests for the command-line interface (python -m repro ...)."""

import pytest

from repro.__main__ import main


class TestCLI:
    @pytest.mark.parametrize(
        "cmd",
        [
            ["sort", "--n", "256", "--v", "4"],
            ["permute", "--n", "256", "--v", "4"],
            ["transpose", "--n", "256", "--v", "4"],
            ["listrank", "--n", "128", "--v", "4"],
            ["cc", "--n", "64", "--v", "4"],
            ["hull", "--n", "128", "--v", "4"],
            ["delaunay", "--n", "48", "--v", "4"],
        ],
    )
    def test_subcommands_run(self, cmd, capsys):
        assert main(cmd) == 0
        out = capsys.readouterr().out
        assert "parallel I/O operations" in out
        assert "lambda" in out

    def test_sort_with_baselines(self, capsys):
        assert main(["sort", "--n", "512", "--v", "4", "--compare-baselines"]) == 0
        out = capsys.readouterr().out
        assert "EM mergesort" in out
        assert "Sibeyn-Kaufmann" in out

    def test_listrank_with_pram(self, capsys):
        assert main(["listrank", "--n", "128", "--v", "4", "--compare-pram"]) == 0
        assert "PRAM simulation" in capsys.readouterr().out

    def test_machines_overview(self, capsys):
        assert main(["machines", "--n", "512", "--v", "4"]) == 0
        out = capsys.readouterr().out
        assert "laptop" in out and "diskarray" in out and "cluster" in out

    def test_multiprocessor_run(self, capsys):
        assert main(["sort", "--n", "256", "--v", "4", "-p", "2"]) == 0
        assert "p=2" in capsys.readouterr().out

    def test_custom_machine_flags(self, capsys):
        assert main(
            ["permute", "--n", "256", "--v", "4", "-D", "8", "-B", "16",
             "--G", "25"]
        ) == 0
        out = capsys.readouterr().out
        assert "D=8" in out and "B=16" in out and "G=25" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
