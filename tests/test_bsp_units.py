"""Unit tests for the BSP front-end: messages, packets, contexts, runner."""

import pytest

from repro.bsp.message import (
    Message,
    Packet,
    blocks_to_messages,
    message_to_blocks,
    message_to_packets,
    packet_to_blocks,
)
from repro.bsp.program import AlgorithmError, VPContext
from repro.bsp.runner import ReferenceRunner
from repro.params import MachineParams

from .helpers import NoCommunication, RingShift


class TestMessage:
    def test_size(self):
        assert Message(0, 1, [1, 2, 3]).size == 3
        assert Message(0, 1).size == 0

    def test_iter(self):
        assert list(Message(0, 1, ["a", "b"])) == ["a", "b"]

    def test_empty_message_yields_one_block(self):
        blocks = message_to_blocks(Message(2, 3), B=4, msg_id=9)
        assert len(blocks) == 1
        assert blocks[0].dest == 3 and blocks[0].src == 2 and blocks[0].msg == 9

    def test_blocking_boundaries(self):
        for n in (1, 3, 4, 5, 8, 9):
            blocks = message_to_blocks(Message(0, 1, list(range(n))), B=4, msg_id=0)
            assert len(blocks) == -(-n // 4)
            assert sum(len(b.records) for b in blocks) == n


class TestPackets:
    def test_empty_message_one_packet(self):
        pkts = message_to_packets(Message(1, 2), b=8, msg_id=0)
        assert len(pkts) == 1 and pkts[0].size == 0

    def test_packet_sizes(self):
        pkts = message_to_packets(Message(1, 2, list(range(20))), b=8, msg_id=0)
        assert [p.size for p in pkts] == [8, 8, 4]
        assert [p.offset for p in pkts] == [0, 8, 16]

    def test_packet_to_blocks_seq_is_global_offset(self):
        pkt = Packet(src=1, dest=2, msg=0, offset=16, records=list(range(10)))
        blocks = packet_to_blocks(pkt, B=4)
        assert [b.seq for b in blocks] == [16, 20, 24]

    def test_packets_via_blocks_roundtrip(self):
        msg = Message(3, 4, list(range(23)))
        blocks = []
        for pkt in message_to_packets(msg, b=7, msg_id=5):
            blocks.extend(packet_to_blocks(pkt, B=3))
        (back,) = blocks_to_messages(reversed(blocks))
        assert back.payload == msg.payload
        assert (back.src, back.dest) == (3, 4)


class TestVPContext:
    def test_send_records_counted(self):
        ctx = VPContext(0, 4, 0, {}, [], comm_bound=10)
        ctx.send(1, [1, 2, 3])
        assert ctx.sent_records == 3
        with pytest.raises(AlgorithmError):
            ctx.send(2, list(range(8)))  # 3 + 8 > 10

    def test_send_all_skips_empty(self):
        ctx = VPContext(0, 4, 0, {}, [])
        ctx.send_all({1: [5], 2: [], 3: [7, 8]})
        assert sorted(m.dest for m in ctx.outbox) == [1, 3]

    def test_charge_accumulates(self):
        ctx = VPContext(0, 2, 0, {}, [])
        ctx.charge(5)
        ctx.charge(2.5)
        assert ctx.comp_ops == 7.5

    def test_vote_halt(self):
        ctx = VPContext(0, 2, 0, {}, [])
        assert not ctx.halted
        ctx.vote_halt()
        assert ctx.halted


class TestReferenceRunner:
    def test_rejects_bad_v(self):
        with pytest.raises(ValueError):
            ReferenceRunner(NoCommunication(), 0)

    def test_counts_supersteps(self):
        r = ReferenceRunner(RingShift(payload_size=2, rounds=3), 4)
        r.run()
        assert r.supersteps_executed == 4

    def test_comm_cost_uses_packets(self):
        machine = MachineParams(b=2, M=1024, B=16)
        r = ReferenceRunner(RingShift(payload_size=6, rounds=1), 4, machine=machine)
        _, ledger = r.run()
        # 6 records sent + 6 received per vp per round, b=2: 6 packets.
        assert ledger.supersteps[0].comm_packets == 6

    def test_comm_bound_enforcement_togglable(self):
        class Chatty(RingShift):
            def comm_bound(self):
                return 1  # lie

        with pytest.raises(AlgorithmError):
            ReferenceRunner(Chatty(payload_size=4), 4).run()
        out, _ = ReferenceRunner(
            Chatty(payload_size=4), 4, enforce_comm_bound=False
        ).run()
        assert len(out) == 4
