"""Crash durability on the file plane: SIGKILL a worker, resume elsewhere.

The recovery story the in-memory plane could never actually test: a
``ProcessBackend`` worker is killed mid-superstep (not an injected fault —
a real ``SIGKILL``), the engine's last checkpoint is pickled to disk like a
production system would persist it, and a *fresh process* pointing at the
same ``storage_dir`` resumes.  Because checkpoints on non-memory planes
carry storage references (fsynced track files + allocation metadata), the
resume re-attaches the on-disk data in place — zero recovery I/O, no
rehydration — and must still produce the reference outputs.
"""

import os
import pickle
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.algorithms.sorting import CGMSampleSort
from repro.core.parsim import ParallelEMSimulation
from repro.core.simulator import build_params
from repro.params import MachineParams
from repro.workloads import uniform_keys

N, V, SEED = 512, 8, 0


class KillerSort(CGMSampleSort):
    """Sample sort that SIGKILLs its own worker process at superstep 1.

    The kill is armed by a flag file, so the algorithm is inert during the
    resumed run (and in the engine process, whose pid is recorded before
    the workers fork).
    """

    def __init__(self, data, v, flag_path: str):
        super().__init__(data, v)
        self.flag_path = flag_path
        self.host_pid = os.getpid()

    def superstep(self, ctx) -> None:
        if (
            ctx.step == 1
            and os.getpid() != self.host_pid
            and os.path.exists(self.flag_path)
        ):
            try:
                os.unlink(self.flag_path)
            except FileNotFoundError:  # pragma: no cover - sibling won the race
                pass
            os.kill(os.getpid(), signal.SIGKILL)
        super().superstep(ctx)


class KillerQueueSort(CGMSampleSort):
    """Sample sort that dies with a provably non-empty write-behind queue.

    In the worker process, the first superstep-1 call stalls every flusher
    gate.  Context saves happen per *round* (after all of a round's
    superstep calls), so the test runs with ``k=2``: round 1's saves pile
    up in the stalled write-behind queues, and round 2's first superstep
    call observes the queued bytes and SIGKILLs the worker mid-superstep —
    the overlapped plane's worst case: committed checkpoint on the platter,
    uncommitted post-barrier writes still in RAM.
    """

    def __init__(self, data, v, flag_path: str):
        super().__init__(data, v)
        self.flag_path = flag_path
        self.host_pid = os.getpid()
        self._stalled = False

    def superstep(self, ctx) -> None:
        if (
            ctx.step == 1
            and os.getpid() != self.host_pid
            and os.path.exists(self.flag_path)
        ):
            from repro.emio.storage import _LIVE_POOLS

            pools = list(_LIVE_POOLS)
            if not self._stalled:
                self._stalled = True
                assert pools, "worker has no flusher pools: overlap not wired"
                for pool in pools:
                    pool.gate.clear()
            elif any(pool.pending_bytes for pool in pools):
                try:
                    os.unlink(self.flag_path)
                except FileNotFoundError:  # pragma: no cover - sibling raced
                    pass
                os.kill(os.getpid(), signal.SIGKILL)
        super().superstep(ctx)


def _machine(p=2):
    return MachineParams(p=p, M=1 << 18, D=4, B=16, b=32)


def _reference_outputs():
    alg = CGMSampleSort(uniform_keys(N, seed=SEED), v=V)
    sim = ParallelEMSimulation(alg, build_params(alg, _machine(), v=V), seed=SEED)
    outputs, _report = sim.run()
    return outputs


_RESUME_CHILD = textwrap.dedent("""
    import json, pickle, sys

    from repro.algorithms.sorting import CGMSampleSort
    from repro.core.parsim import ParallelEMSimulation
    from repro.core.simulator import build_params
    from repro.params import MachineParams
    from repro.workloads import uniform_keys

    ckpt_path, storage_dir = sys.argv[1], sys.argv[2]
    with open(ckpt_path, "rb") as fh:
        ckpt = pickle.load(fh)
    alg = CGMSampleSort(uniform_keys(512, seed=0), v=8)
    machine = MachineParams(p=2, M=1 << 18, D=4, B=16, b=32)
    sim = ParallelEMSimulation(
        alg, build_params(alg, machine, v=8), seed=0,
        backend="process", checkpoint=True,
        storage="file", storage_dir=storage_dir,
    )
    outputs, report = sim.resume_from_checkpoint(ckpt)
    print(json.dumps({
        "outputs": outputs,
        "resumed_from": report.faults.resumed_from_step,
        "recovery_io_ops": report.faults.recovery_io_ops,
    }))
""")


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="SIGKILL protocol assumes fork workers",
)
class TestWorkerKillResume:
    def test_sigkill_worker_then_resume_in_fresh_process(self, tmp_path):
        flag = tmp_path / "kill.flag"
        flag.write_text("armed")
        storage_dir = str(tmp_path / "tracks")
        ckpt_path = tmp_path / "last.ckpt"

        alg = KillerSort(uniform_keys(N, seed=SEED), v=V, flag_path=str(flag))
        dying = ParallelEMSimulation(
            alg, build_params(alg, _machine(), v=V), seed=SEED,
            backend="process", checkpoint=True,
            storage="file", storage_dir=storage_dir,
        )
        with pytest.raises((EOFError, OSError, BrokenPipeError)):
            dying.run()
        assert not flag.exists(), "the worker died before disarming the flag"
        ckpt = dying.last_checkpoint
        assert ckpt is not None
        assert ckpt.storage_refs is not None
        ckpt_path.write_bytes(pickle.dumps(ckpt, pickle.HIGHEST_PROTOCOL))

        # The track files survived the crash (the engine does not own an
        # explicit storage_dir, so shutdown must leave it in place).
        assert os.path.isdir(os.path.join(storage_dir, "proc0"))

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(os.path.dirname(__file__), "..", "src"),
                        env.get("PYTHONPATH")) if p
        )
        child = subprocess.run(
            [sys.executable, "-c", _RESUME_CHILD, str(ckpt_path), storage_dir],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert child.returncode == 0, child.stderr
        import json

        got = json.loads(child.stdout.strip().splitlines()[-1])
        assert got["outputs"] == _reference_outputs()
        assert got["resumed_from"] == ckpt.step
        # Re-attach, not rehydrate: restoring by reference costs no I/O.
        assert got["recovery_io_ops"] == 0

    def test_resume_in_same_process_reattaches(self, tmp_path):
        """Same protocol without the process boundary: a second engine in
        this process re-attaches the dead run's storage_dir directly."""
        flag = tmp_path / "kill.flag"
        flag.write_text("armed")
        storage_dir = str(tmp_path / "tracks")

        alg = KillerSort(uniform_keys(N, seed=SEED), v=V, flag_path=str(flag))
        dying = ParallelEMSimulation(
            alg, build_params(alg, _machine(), v=V), seed=SEED,
            backend="process", checkpoint=True,
            storage="file", storage_dir=storage_dir,
        )
        with pytest.raises((EOFError, OSError, BrokenPipeError)):
            dying.run()
        ckpt = dying.last_checkpoint
        assert ckpt is not None

        clean = CGMSampleSort(uniform_keys(N, seed=SEED), v=V)
        fresh = ParallelEMSimulation(
            clean, build_params(clean, _machine(), v=V), seed=SEED,
            backend="process", checkpoint=True,
            storage="file", storage_dir=storage_dir,
        )
        outputs, report = fresh.resume_from_checkpoint(ckpt)
        assert outputs == _reference_outputs()
        assert report.faults.resumed_from_step == ckpt.step
        assert report.faults.recovery_io_ops == 0


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="SIGKILL protocol assumes fork workers",
)
class TestOverlapQueueKillResume:
    def test_sigkill_with_nonempty_write_behind_queue(self, tmp_path):
        """The overlapped plane's torture case: the worker dies while writes
        sit in its flusher queues.  Those writes are simply lost (they are
        post-barrier), the quiesce-before-fsync invariant guarantees the
        committed checkpoint is complete, and scrub + resume on the same
        storage_dir must golden-verify with zero recovery I/O."""
        from repro.core.checkpoint import scrub

        flag = tmp_path / "kill.flag"
        flag.write_text("armed")
        storage_dir = str(tmp_path / "tracks")

        alg = KillerQueueSort(uniform_keys(N, seed=SEED), v=V,
                              flag_path=str(flag))
        dying = ParallelEMSimulation(
            alg, build_params(alg, _machine(), v=V, k=2), seed=SEED,
            backend="process", checkpoint=True,
            storage="file", storage_dir=storage_dir, io_overlap=True,
        )
        with pytest.raises((EOFError, OSError, BrokenPipeError)):
            dying.run()
        assert not flag.exists(), "the worker died before disarming the flag"
        assert dying.last_checkpoint is not None

        res = scrub(storage_dir)
        assert not res.quarantined, res.errors
        assert res.checkpoint is not None

        clean = CGMSampleSort(uniform_keys(N, seed=SEED), v=V)
        fresh = ParallelEMSimulation(
            clean, build_params(clean, _machine(), v=V, k=2), seed=SEED,
            backend="process", checkpoint=True,
            storage="file", storage_dir=storage_dir, io_overlap=True,
        )
        outputs, report = fresh.resume_from_checkpoint(res.checkpoint)

        ref_alg = CGMSampleSort(uniform_keys(N, seed=SEED), v=V)
        ref = ParallelEMSimulation(
            ref_alg, build_params(ref_alg, _machine(), v=V, k=2), seed=SEED,
        )
        ref_outputs, _ = ref.run()
        assert outputs == ref_outputs
        assert report.faults.resumed_from_step == res.checkpoint.step
        assert report.faults.recovery_io_ops == 0
