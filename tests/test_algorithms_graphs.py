"""Tests for Group C CGM graph algorithms."""

import pytest

from repro import workloads
from repro.algorithms.graphs import (
    CGMConnectedComponents,
    CGMEulerTourSuccessor,
    CGMListRanking,
    CGMSpanningForest,
    euler_tour_positions,
    preorder_numbers,
    subtree_sizes,
    tree_depths,
)
from repro.bsp.runner import run_reference
from repro.core.simulator import simulate
from repro.params import MachineParams

MACHINE = MachineParams(p=1, M=1 << 16, D=2, B=32, b=32)


def true_ranks(succ):
    def walk(i):
        r = 0
        while succ[i] != i:
            i = succ[i]
            r += 1
        return r

    return [walk(i) for i in range(len(succ))]


def ranks_from(outputs, n):
    out = [None] * n
    for part in outputs:
        for node, r in part:
            out[node] = r
    return out


class TestListRanking:
    @pytest.mark.parametrize("n,v", [(1, 1), (2, 2), (16, 4), (100, 4), (64, 8)])
    def test_distances(self, n, v):
        succ = workloads.random_linked_list(n, seed=n * 7 + v)
        out, _ = run_reference(CGMListRanking(succ, v), v)
        assert ranks_from(out, n) == true_ranks(succ)

    def test_identity_chain(self):
        # 0 -> 1 -> 2 -> ... -> n-1 (tail)
        n, v = 32, 4
        succ = list(range(1, n)) + [n - 1]
        out, _ = run_reference(CGMListRanking(succ, v), v)
        assert ranks_from(out, n) == [n - 1 - i for i in range(n)]

    def test_weighted_suffix_sums(self):
        n, v = 24, 4
        succ = list(range(1, n)) + [n - 1]
        values = [i + 1 for i in range(n)]  # weight of edge out of node i
        out, _ = run_reference(CGMListRanking(succ, v, values=values), v)
        ranks = ranks_from(out, n)
        # rank(i) = sum of values[i..n-2] (the tail's weight is ignored).
        for i in range(n):
            assert ranks[i] == sum(values[i : n - 1])

    def test_rejects_multiple_tails(self):
        with pytest.raises(ValueError):
            CGMListRanking([0, 1], 2)  # two self-loops

    def test_lambda_logarithmic(self):
        n, v = 256, 8
        succ = workloads.random_linked_list(n, seed=3)
        _, ledger = run_reference(CGMListRanking(succ, v), v)
        # O(log v) contraction + expansion rounds, 3 supersteps each,
        # far fewer than the O(log n) a PRAM simulation would need per
        # pointer-jumping *with a sort each*.
        assert ledger.num_supersteps <= 20 * max(1, v.bit_length())

    @pytest.mark.parametrize("seed", range(3))
    def test_em_sequential_matches(self, seed):
        n, v = 64, 4
        succ = workloads.random_linked_list(n, seed=seed)
        out, report = simulate(CGMListRanking(succ, v), MACHINE, v=v, seed=seed)
        assert ranks_from(out, n) == true_ranks(succ)
        assert report.io_ops > 0

    def test_em_parallel_matches(self):
        n, v = 64, 4
        succ = workloads.random_linked_list(n, seed=5)
        machine = MachineParams(p=2, M=1 << 16, D=2, B=32, b=32)
        out, _ = simulate(CGMListRanking(succ, v), machine, v=v, k=2, seed=5)
        assert ranks_from(out, n) == true_ranks(succ)


def dfs_facts(edges, root):
    """Ground truth depths/preorder/subtree sizes by explicit DFS."""
    children: dict[int, list[int]] = {}
    for p, c in edges:
        children.setdefault(p, []).append(c)
    for v_ in children:
        children[v_].sort()
    depth, pre, size = {root: 0}, {}, {}
    order = 0
    stack = [(root, False)]
    while stack:
        node, done = stack.pop()
        if done:
            size[node] = 1 + sum(size[c] for c in children.get(node, []))
            continue
        pre[node] = order
        order += 1
        stack.append((node, True))
        for c in reversed(children.get(node, [])):
            depth[c] = depth[node] + 1
            stack.append((c, False))
    return depth, pre, size


class TestEulerTour:
    @pytest.mark.parametrize("n,v", [(2, 2), (8, 4), (40, 4), (33, 8)])
    def test_tour_is_a_single_chain(self, n, v):
        edges = workloads.random_tree_edges(n, seed=n)
        out, _ = run_reference(CGMEulerTourSuccessor(edges, 0, v), v)
        succ = {}
        for part in out:
            succ.update(dict(part))
        narcs = 2 * (n - 1)
        assert len(succ) == narcs
        tails = [a for a, s in succ.items() if s == a]
        assert len(tails) == 1
        # Follow the chain from the head: must visit every arc once.
        heads = set(succ) - {s for a, s in succ.items() if s != a}
        (head,) = heads
        seen, cur = set(), head
        while cur not in seen:
            seen.add(cur)
            cur = succ[cur]
        assert len(seen) == narcs

    def test_tour_positions_alternate_consistently(self):
        n, v = 20, 4
        edges = workloads.random_tree_edges(n, seed=2)
        pos = euler_tour_positions(edges, 0, v)
        # Down arc of every edge precedes its up arc.
        for k in range(n - 1):
            assert pos[2 * k] < pos[2 * k + 1]
        assert sorted(pos) == list(range(2 * (n - 1)))


class TestTreeAlgos:
    @pytest.mark.parametrize("n,v", [(8, 4), (30, 4), (64, 8)])
    def test_depths(self, n, v):
        edges = workloads.random_tree_edges(n, seed=n + 1)
        depth, _, _ = dfs_facts(edges, 0)
        assert tree_depths(edges, 0, v) == depth

    @pytest.mark.parametrize("n,v", [(8, 4), (30, 4)])
    def test_subtree_sizes(self, n, v):
        edges = workloads.random_tree_edges(n, seed=n + 2)
        _, _, size = dfs_facts(edges, 0)
        assert subtree_sizes(edges, 0, v) == size

    def test_preorder_is_valid_ordering(self):
        n, v = 30, 4
        edges = workloads.random_tree_edges(n, seed=9)
        pre = preorder_numbers(edges, 0, v)
        depth, _, size = dfs_facts(edges, 0)
        assert sorted(pre.values()) == list(range(n))
        # Parents precede children.
        for p, c in edges:
            assert pre[p] < pre[c]
        # Every subtree occupies a contiguous preorder interval.
        for node, sz in size.items():
            members = sorted(
                pre[x] for x in pre if pre[node] <= pre[x] < pre[node] + sz
            )
            assert len(members) == sz

    def test_path_tree(self):
        # Degenerate path: depths 0..n-1.
        n, v = 16, 4
        edges = [(i, i + 1) for i in range(n - 1)]
        assert tree_depths(edges, 0, v) == {i: i for i in range(n)}

    def test_star_tree(self):
        n, v = 17, 4
        edges = [(0, i) for i in range(1, n)]
        depths = tree_depths(edges, 0, v)
        assert depths[0] == 0 and all(depths[i] == 1 for i in range(1, n))
        sizes = subtree_sizes(edges, 0, v)
        assert sizes[0] == n and all(sizes[i] == 1 for i in range(1, n))

    def test_depths_through_em_engine(self):
        n, v = 24, 4
        edges = workloads.random_tree_edges(n, seed=4)
        depth, _, _ = dfs_facts(edges, 0)
        run = lambda alg, vv: simulate(alg, MACHINE, v=vv, seed=1)[0]
        assert tree_depths(edges, 0, v, run=run) == depth


class TestConnectivity:
    @pytest.mark.parametrize("n,ncomp,v", [(12, 3, 4), (40, 5, 4), (30, 1, 8)])
    def test_components(self, n, ncomp, v):
        edges, comp = workloads.random_forest_edges(n, ncomp, seed=n)
        out, _ = run_reference(CGMConnectedComponents(n, edges, v), v)
        labels = {}
        for part in out:
            labels.update(dict(part))
        assert len(labels) == n
        # Same component <=> same label.
        for a in range(n):
            for b in range(n):
                assert (labels[a] == labels[b]) == (comp[a] == comp[b])

    def test_with_extra_edges(self):
        n, v = 20, 4
        edges, comp = workloads.random_forest_edges(n, 2, seed=7)
        # Add redundant intra-component edges.
        extra = [(a, b) for a in range(n) for b in range(a + 1, n)
                 if comp[a] == comp[b]][:15]
        out, _ = run_reference(CGMConnectedComponents(n, edges + extra, v), v)
        labels = {}
        for part in out:
            labels.update(dict(part))
        for a in range(n):
            for b in range(n):
                assert (labels[a] == labels[b]) == (comp[a] == comp[b])

    def test_isolated_vertices(self):
        out, _ = run_reference(CGMConnectedComponents(6, [], 2), 2)
        labels = {}
        for part in out:
            labels.update(dict(part))
        assert labels == {i: i for i in range(6)}

    def test_lambda_log_v(self):
        n, v = 64, 8
        edges = workloads.random_graph_edges(n, 100, seed=1, connected=True)
        _, ledger = run_reference(CGMConnectedComponents(n, edges, v), v)
        assert ledger.num_supersteps <= v.bit_length() + 3

    def test_spanning_forest(self):
        n, v = 30, 4
        edges = workloads.random_graph_edges(n, 60, seed=2, connected=True)
        out, _ = run_reference(CGMSpanningForest(n, edges, v), v)
        forest_ids = out[0]
        assert len(forest_ids) == n - 1  # connected graph: spanning tree
        # The selected edges indeed connect everything and are acyclic.
        import networkx as nx

        g = nx.Graph(edges[i] for i in forest_ids)
        assert g.number_of_nodes() == n and nx.is_forest(g)
        assert nx.number_connected_components(g) == 1

    def test_spanning_forest_multi_component(self):
        n, v = 24, 4
        edges, comp = workloads.random_forest_edges(n, 4, seed=3)
        out, _ = run_reference(CGMSpanningForest(n, edges, v), v)
        assert len(out[0]) == n - 4  # forest with 4 components

    def test_em_sequential_matches(self):
        n, v = 24, 4
        edges, comp = workloads.random_forest_edges(n, 3, seed=11)
        out, _ = simulate(CGMConnectedComponents(n, edges, v), MACHINE, v=v)
        labels = {}
        for part in out:
            labels.update(dict(part))
        for a in range(n):
            for b in range(n):
                assert (labels[a] == labels[b]) == (comp[a] == comp[b])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(ValueError):
            CGMConnectedComponents(4, [(0, 7)], 2)
