"""Tests for the Delaunay kernel and the CGM Delaunay algorithm.

Oracle: ``scipy.spatial.Delaunay`` (Qhull).  Workload points are in general
position (distinct coordinates, random placement), where the Delaunay
triangulation is unique and the comparison is exact.
"""

import math
import random

import pytest
from scipy.spatial import Delaunay as ScipyDelaunay

from repro import workloads
from repro.algorithms.geometry.delaunay import CGMDelaunay, voronoi_edges
from repro.algorithms.geometry.triangulate import (
    circumcircle,
    delaunay_triangulation,
)
from repro.bsp.runner import run_reference
from repro.core.simulator import simulate
from repro.params import MachineParams

MACHINE = MachineParams(p=1, M=1 << 18, D=2, B=32, b=32)


def scipy_triangles(points):
    tri = ScipyDelaunay(points)
    return sorted(tuple(sorted(s)) for s in tri.simplices.tolist())


class TestKernel:
    def test_circumcircle_right_triangle(self):
        ux, uy, r2 = circumcircle((0, 0), (2, 0), (0, 2))
        assert (ux, uy) == pytest.approx((1.0, 1.0))
        assert r2 == pytest.approx(2.0)

    def test_circumcircle_collinear_rejected(self):
        with pytest.raises(ValueError):
            circumcircle((0, 0), (1, 1), (2, 2))

    def test_triangle(self):
        assert delaunay_triangulation([(0, 0), (1, 0), (0.4, 1)]) == [(0, 1, 2)]

    def test_square_two_triangles(self):
        tris = delaunay_triangulation([(0, 0), (10, 0), (10, 9), (0, 9)])
        assert len(tris) == 2

    @pytest.mark.parametrize("n,seed", [(10, 1), (40, 2), (120, 3)])
    def test_matches_scipy(self, n, seed):
        pts = workloads.random_points(n, seed=seed)
        assert delaunay_triangulation(pts) == scipy_triangles(pts)

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError):
            delaunay_triangulation([(0, 0), (0, 0), (1, 1)])

    def test_empty_circumcircles(self):
        pts = workloads.random_points(30, seed=4)
        for a, b, c in delaunay_triangulation(pts):
            ux, uy, r2 = circumcircle(pts[a], pts[b], pts[c])
            for i, p in enumerate(pts):
                if i not in (a, b, c):
                    d2 = (p[0] - ux) ** 2 + (p[1] - uy) ** 2
                    assert d2 > r2 * (1 - 1e-9)


class TestCGMDelaunay:
    @pytest.mark.parametrize("n,v", [(20, 4), (60, 4), (100, 8)])
    def test_matches_scipy(self, n, v):
        pts = workloads.random_points(n, seed=n + v)
        out, ledger = run_reference(CGMDelaunay(pts, v), v)
        got = sorted(t for part in out for t in part)
        assert got == scipy_triangles(pts)

    def test_each_triangle_output_once(self):
        pts = workloads.random_points(50, seed=5)
        out, _ = run_reference(CGMDelaunay(pts, 4), 4)
        flat = [t for part in out for t in part]
        assert len(flat) == len(set(flat))

    def test_clustered_points(self):
        # Two distant clusters: long cross-cluster circumcircles force
        # multiple fetch rounds.
        rng = random.Random(6)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(15)]
        pts += [(rng.uniform(500, 510), rng.uniform(0, 10)) for _ in range(15)]
        out, ledger = run_reference(CGMDelaunay(pts, 4), 4)
        got = sorted(t for part in out for t in part)
        assert got == scipy_triangles(pts)

    def test_rounds_bounded(self):
        pts = workloads.random_points(60, seed=7)
        _, ledger = run_reference(CGMDelaunay(pts, 4), 4)
        # 3 distribution supersteps + a handful of certification rounds.
        assert ledger.num_supersteps <= 3 + 3 * 6

    def test_em_sequential_matches(self):
        pts = workloads.random_points(48, seed=8)
        out, report = simulate(CGMDelaunay(pts, 4), MACHINE, v=4, seed=2)
        got = sorted(t for part in out for t in part)
        assert got == scipy_triangles(pts)
        assert report.io_ops > 0

    def test_voronoi_dual(self):
        pts = workloads.random_points(30, seed=9)
        tris = delaunay_triangulation(pts)
        vedges = voronoi_edges(pts, tris)
        # Interior Delaunay edges each yield one Voronoi edge.
        edge_use: dict = {}
        for a, b, c in tris:
            for e in ((a, b), (b, c), (a, c)):
                e = (min(e), max(e))
                edge_use[e] = edge_use.get(e, 0) + 1
        interior = sum(1 for cnt in edge_use.values() if cnt == 2)
        assert len(vedges) == interior
        # Every Voronoi edge endpoint is equidistant from the shared sites.
        assert all(
            isinstance(p, tuple) and len(p) == 2 for seg in vedges for p in seg
        )
