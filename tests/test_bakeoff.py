"""Tier-1 slice of the competitor bake-off (``repro.bakeoff``).

The full sweep lives in ``benchmarks/bench_bakeoff.py`` and the committed
``BENCH_BAKEOFF.json``; this file keeps the fast guarantees in the regular
suite: the quick sweep referees clean on a fixed seed, outputs are
byte-identical across engines x backends x storage planes, every measured
cost respects its closed-form bound, the JSON schema round-trips, and the
``repro bakeoff`` entry point works end to end.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bakeoff import (
    ENGINES,
    SCHEMA_VERSION,
    TASKS,
    BakeoffConfig,
    default_sweep,
    format_table,
    pick_v,
    run_row,
    run_sweep,
    validate_bakeoff_dict,
)
from repro.baselines import SORTING_BASELINES

REPO = Path(__file__).resolve().parent.parent
ARTIFACT = REPO / "BENCH_BAKEOFF.json"

JOINT = BakeoffConfig(1024, 4096, 16, 2, "joint")
DEEP = BakeoffConfig(4096, 256, 16, 4, "deep")


# -- sweep geometry -----------------------------------------------------------


class TestSweepGeometry:
    def test_engines_cover_the_registry(self):
        assert ENGINES[0] == "cgm"
        assert set(ENGINES[1:]) == set(SORTING_BASELINES)

    def test_default_sweep_modes_and_size(self):
        sweep = default_sweep()
        assert len(sweep) >= 12  # the acceptance bar's sweep size
        modes = {c.mode for c in sweep}
        assert modes == {"joint", "deep"}
        quick = default_sweep(quick=True)
        assert len(quick) < len(sweep)

    def test_pick_v_is_admissible(self):
        from repro import workloads as wl

        machine = JOINT.machine(p=2)
        data = wl.uniform_keys(JOINT.n, seed=0)
        v = pick_v("sort", JOINT, machine, data, None)
        assert v is not None
        assert JOINT.n % v == 0 and v % 2 == 0 and JOINT.n >= v * v


# -- the quick sweep referees clean -------------------------------------------


class TestQuickSweep:
    @pytest.fixture(scope="class")
    def payload(self):
        return validate_bakeoff_dict(run_sweep(quick=True))

    def test_no_mismatches_or_violations(self, payload):
        assert payload["mismatches"] == []
        assert payload["violations"] == []

    def test_every_cell_ran_or_was_skipped_honestly(self, payload):
        assert len(payload["rows"]) == payload["configs"] * len(TASKS)
        for row in payload["rows"]:
            for name in ENGINES:
                entry = row["engines"][name]
                if row["mode"] == "deep" and name == "cgm":
                    assert "skipped" in entry
                else:
                    assert entry["match"] and entry["ok"]

    def test_guidesort_schedule_never_missed(self, payload):
        cells = [
            row["engines"]["guidesort"] for row in payload["rows"]
        ]
        assert cells and all(c["guide_mismatches"] == 0 for c in cells)

    def test_json_round_trip(self, payload):
        again = json.loads(json.dumps(payload, sort_keys=True))
        assert validate_bakeoff_dict(again) == payload

    def test_format_table_shape(self, payload):
        table = format_table(payload)
        assert len(table) == len(payload["rows"])
        assert all(len(r) == 6 + len(ENGINES) for r in table)
        # No cell carries the '!' referee mark on a clean sweep.
        assert not any("!" in c for r in table for c in r[6:])


# -- cross-plane byte equality ------------------------------------------------


class TestCrossPlane:
    """The same cell on different execution planes: identical outputs
    (match=True against one shared reference) and identical counted I/O —
    backend and storage are counted-cost invisible for every engine."""

    def cell(self, task, **kw):
        return run_row(JOINT, task, **kw)["engines"]

    @pytest.mark.parametrize("task", TASKS)
    def test_storage_plane_is_invisible(self, task):
        mem = self.cell(task)
        filed = self.cell(task, storage="file")
        for name in ENGINES:
            assert filed[name]["match"] and mem[name]["match"]
            assert filed[name]["io_ops"] == mem[name]["io_ops"]

    def test_process_backend_is_invisible_to_cgm(self):
        inline = self.cell("sort", p_cgm=2)["cgm"]
        proc = self.cell("sort", p_cgm=2, backend="process")["cgm"]
        assert inline["match"] and proc["match"]
        assert inline["io_ops"] == proc["io_ops"]
        assert inline["v"] == proc["v"]

    def test_deep_rows_skip_only_the_simulation(self):
        row = run_row(DEEP, "sort")
        assert "skipped" in row["engines"]["cgm"]
        for name in SORTING_BASELINES:
            assert row["engines"][name]["match"]


# -- schema validation --------------------------------------------------------


class TestValidate:
    def good(self):
        return run_sweep([JOINT], ("sort",), engines=("emsort",))

    def test_accepts_a_fresh_payload(self):
        validate_bakeoff_dict(self.good())

    @pytest.mark.parametrize(
        "mutate,match",
        [
            (lambda p: p.update(schema_version=SCHEMA_VERSION + 1), "schema"),
            (lambda p: p.update(rows=[]), "row count"),
            (lambda p: p.update(violations="nope"), "must be a list"),
            (lambda p: p["rows"][0].pop("engines"), "malformed"),
            (lambda p: p["rows"][0].update(task="transpose"), "not in payload"),
            (
                lambda p: p["rows"][0]["engines"]["emsort"].update(io_ops=-1),
                "counted int",
            ),
            (
                lambda p: p["rows"][0]["engines"]["emsort"].update(match="yes"),
                "must be a bool",
            ),
        ],
    )
    def test_rejects_malformed_payloads(self, mutate, match):
        payload = self.good()
        mutate(payload)
        with pytest.raises(ValueError, match=match):
            validate_bakeoff_dict(payload)

    def test_committed_artifact_validates(self):
        payload = validate_bakeoff_dict(json.loads(ARTIFACT.read_text()))
        assert payload["configs"] >= 12
        assert payload["violations"] == [] and payload["mismatches"] == []
        # And it survives a dump/load round trip byte-for-byte.
        dumped = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        assert dumped == ARTIFACT.read_text()


# -- CLI ----------------------------------------------------------------------


class TestBakeoffCLI:
    def run_cli(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", "bakeoff", *argv],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_quick_smoke_writes_valid_json(self, tmp_path):
        out = tmp_path / "bakeoff.json"
        proc = self.run_cli("--quick", "--out", str(out))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "bakeoff:" in proc.stdout
        assert "zero bound violations" in proc.stdout
        payload = validate_bakeoff_dict(json.loads(out.read_text()))
        assert payload["violations"] == [] and payload["mismatches"] == []
