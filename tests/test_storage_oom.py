"""Out-of-core proof: the file plane runs datasets the heap cannot hold.

Two enforcement mechanisms, per the storage-plane promise:

* **tracemalloc** — the peak Python heap of an :class:`OutOfCoreSort` run
  under ``FileStorage`` stays at most 1/4 of the honestly measured
  serialized dataset size.  The dataset is generated per-share inside the
  algorithm and digested on output (see :mod:`repro.outofcore`), so the
  only O(n) the host could hold would be storage-plane leakage — exactly
  what this pins down.
* **resource.setrlimit(RLIMIT_AS)** — a subprocess caps its own address
  space at baseline + budget; the file plane completes and verifies under
  the cap while the memory plane, which necessarily materializes every
  block in heap, dies with ``MemoryError`` under the *same* cap.

The RSS pair runs one size smaller than the tracemalloc case to keep the
suite quick; the headline ≥ 4x dataset/heap ratio is asserted in the
tracemalloc test.
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.core.simulator import simulate
from repro.outofcore import (
    OutOfCoreSort,
    serialized_size,
    stream_checksum,
    verify_digests,
)
from repro.params import MachineParams

SEED = 0
RECLEN = 64


def _machine(alg, D=8, B=1024):
    return MachineParams(p=1, M=alg.context_size(), D=D, B=B)


class TestDigests:
    def test_digest_sort_small_matches_checksums(self):
        alg = OutOfCoreSort(4096, 16, seed=SEED, reclen=RECLEN)
        out, _report = simulate(alg, _machine(alg, D=4, B=64), v=16, seed=SEED)
        verify_digests(out, SEED, 4096, 16, RECLEN)

    def test_digest_detects_missing_records(self):
        alg = OutOfCoreSort(4096, 16, seed=SEED, reclen=RECLEN)
        out, _report = simulate(alg, _machine(alg, D=4, B=64), v=16, seed=SEED)
        out[3] = dict(out[3], count=out[3]["count"] - 1)
        with pytest.raises(AssertionError):
            verify_digests(out, SEED, 4096, 16, RECLEN)

    def test_int_records_still_supported(self):
        alg = OutOfCoreSort(1024, 8, seed=SEED)
        out, _report = simulate(alg, _machine(alg, D=4, B=64), v=8, seed=SEED)
        verify_digests(out, SEED, 1024, 8)
        assert stream_checksum(SEED, 1024, 8)[0] == 1024


class TestTracemallocBudget:
    #: 320k 64-byte records ≈ 20.5 MiB pickled; measured peak ≈ 4.3 MiB.
    N, V = 320_000, 64

    def test_file_plane_peak_heap_quarter_of_dataset(self):
        import tracemalloc

        alg = OutOfCoreSort(self.N, self.V, seed=SEED, reclen=RECLEN)
        machine = _machine(alg)
        serialized = serialized_size(SEED, self.N, self.V, RECLEN)
        tracemalloc.start()
        tracemalloc.reset_peak()
        out, _report = simulate(
            alg, machine, v=self.V, seed=SEED, storage="file"
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        verify_digests(out, SEED, self.N, self.V, RECLEN)
        assert 4 * peak <= serialized, (
            f"peak heap {peak} exceeds 1/4 of the {serialized}-byte dataset"
        )

    def test_overlapped_plane_peak_heap_bounded_by_budget(self):
        """The write-behind queues and readahead cache are heap the sync
        plane does not have; DESIGN §12 says they count against the M
        budget.  The out-of-core bound therefore only relaxes by the
        engine's total overlap budget (D drives x per-drive budget) — the
        queues must never silently buffer O(dataset)."""
        import tracemalloc

        from repro.emio.storage import default_overlap_budget

        alg = OutOfCoreSort(self.N, self.V, seed=SEED, reclen=RECLEN)
        machine = _machine(alg)
        serialized = serialized_size(SEED, self.N, self.V, RECLEN)
        total_budget = machine.D * default_overlap_budget(machine.M, machine.D)
        assert 4 * total_budget <= serialized, (
            "budget so large the bound below would be vacuous"
        )
        tracemalloc.start()
        tracemalloc.reset_peak()
        out, _report = simulate(
            alg, machine, v=self.V, seed=SEED, storage="file", io_overlap=True
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        verify_digests(out, SEED, self.N, self.V, RECLEN)
        assert 4 * (peak - total_budget) <= serialized, (
            f"peak heap {peak} exceeds 1/4 of the {serialized}-byte dataset "
            f"plus the {total_budget}-byte overlap budget"
        )


_RSS_CHILD = textwrap.dedent("""
    import resource, sys

    def vmsize():
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmSize:"):
                    return int(line.split()[1]) * 1024

    from repro.core.simulator import simulate
    from repro.outofcore import OutOfCoreSort, verify_digests
    from repro.params import MachineParams

    plane, budget = sys.argv[1], int(sys.argv[2])
    cap = vmsize() + budget
    resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
    alg = OutOfCoreSort(160_000, 64, seed=0, reclen=64)
    machine = MachineParams(p=1, M=alg.context_size(), D=8, B=1024)
    out, _report = simulate(alg, machine, v=64, seed=0, storage=plane)
    verify_digests(out, 0, 160_000, 64, 64)
    print("COMPLETED")
""")


@pytest.mark.skipif(sys.platform != "linux", reason="RLIMIT_AS semantics")
class TestRlimitCap:
    #: Address-space budget above the interpreter baseline.  160k 64-byte
    #: records ≈ 10 MiB pickled; the memory plane needs all of it (plus
    #: Block/dict overhead) live in heap, the file plane a few blocks.
    BUDGET = 24 << 20

    def _run(self, plane):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(os.path.dirname(__file__), "..", "src"),
                        env.get("PYTHONPATH")) if p
        )
        return subprocess.run(
            [sys.executable, "-c", _RSS_CHILD, plane, str(self.BUDGET)],
            env=env, capture_output=True, text=True, timeout=300,
        )

    def test_file_plane_completes_under_cap(self):
        r = self._run("file")
        assert r.returncode == 0, r.stderr
        assert "COMPLETED" in r.stdout

    def test_memory_plane_violates_same_cap(self):
        r = self._run("memory")
        assert r.returncode != 0
        assert "MemoryError" in r.stderr


_QUEUE_CHILD = textwrap.dedent("""
    import os, resource, sys, time

    def vmsize():
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmSize:"):
                    return int(line.split()[1]) * 1024

    from repro.emio.storage import FileStorage

    budget = int(sys.argv[1])
    root = sys.argv[2]
    stg = FileStorage(os.path.join(root, "d0.track"), B=16,
                      slot_bytes=1 << 14, io_overlap=True,
                      overlap_budget=budget)
    # A deliberately slow platter: the submitter outpaces the flusher, so
    # queued bytes pile up unless backpressure throttles the submitter.
    raw = stg._platter_write
    def slow_write(offset, data):
        time.sleep(0.001)
        raw(offset, data)
    stg._platter_write = slow_write
    cap = vmsize() + (24 << 20)
    resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
    nbytes = 16 << 10
    for i in range(3000):  # 48 MiB submitted, double the address-space cap
        # A fresh buffer per write: a shared object would alias in the
        # queue and hide the growth this test exists to measure.
        stg._write_at(i * nbytes, bytes([i & 0xFF]) * nbytes)
    stg.sync()
    stg.close()
    print("COMPLETED")
""")


@pytest.mark.skipif(sys.platform != "linux", reason="RLIMIT_AS semantics")
class TestWriteBehindQueueBounded:
    """Regression for the overlapped plane's failure mode: a write-behind
    queue with no backpressure buffers the whole write stream in heap.

    The same slow-platter write storm runs twice under one address-space
    cap; only the overlap budget differs.  The bounded (default-sized)
    queue throttles the submitter and completes; the effectively unbounded
    queue must blow through the cap with ``MemoryError`` — proving the
    budget, not luck, is what bounds the buffering.
    """

    def _run(self, budget, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(os.path.dirname(__file__), "..", "src"),
                        env.get("PYTHONPATH")) if p
        )
        return subprocess.run(
            [sys.executable, "-c", _QUEUE_CHILD, str(budget), str(tmp_path)],
            env=env, capture_output=True, text=True, timeout=300,
        )

    def test_bounded_queue_completes_under_cap(self, tmp_path):
        r = self._run(1 << 20, tmp_path)
        assert r.returncode == 0, r.stderr
        assert "COMPLETED" in r.stdout

    def test_unbounded_queue_violates_same_cap(self, tmp_path):
        r = self._run(1 << 40, tmp_path)
        assert r.returncode != 0
        assert "MemoryError" in r.stderr
