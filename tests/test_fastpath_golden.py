"""Golden equivalence suite for the context-swap/disk fast path.

The fast path (``fast_io=True`` data-plane short-circuits plus
``context_cache=True`` pickled-bytes caching) is allowed to change *host
wall-clock only*.  Everything the model counts — outputs, the cost ledger,
per-superstep phase breakdowns, routing statistics, and even the physical
I/O trace — must be byte-identical to the reference path.  These tests pin
that invariant across engines, seeds, checkpointing, fault injection, and
mid-run kill-and-resume.
"""

import pytest

from repro.algorithms.graphs.listranking import CGMListRanking
from repro.algorithms.sorting import CGMSampleSort
from repro.core.checkpoint import SimulationAborted
from repro.core.parsim import ParallelEMSimulation
from repro.core.seqsim import SequentialEMSimulation
from repro.core.simulator import build_params
from repro.emio.faults import FaultPlan, RetryPolicy
from repro.emio.trace import IOTrace
from repro.params import MachineParams
from repro.workloads import random_linked_list, uniform_keys

FAST = {"context_cache": True, "fast_io": True}


def make_sort(n=512, v=8):
    return CGMSampleSort(uniform_keys(n, seed=5), v=v), v


def make_listrank(n=192, v=8):
    return CGMListRanking(random_linked_list(n, seed=5), v=v), v


def build(make, engine, seed=0, p=4, **kwargs):
    alg, v = make()
    machine = MachineParams(p=1 if engine == "sequential" else p, M=1 << 18, D=4, B=16, b=32)
    params = build_params(alg, machine, v=v)
    cls = SequentialEMSimulation if engine == "sequential" else ParallelEMSimulation
    return cls(alg, params, seed=seed, **kwargs)


def golden(sim):
    """Everything the model counts, as one comparable value."""
    outputs, report = sim.run()
    return {
        "outputs": outputs,
        "ledger": report.ledger.summary(),
        "supersteps": [
            (repr(s.phases), repr(s.routing), s.comm_packets, s.message_blocks, s.halted)
            for s in report.supersteps
        ],
        "init_io": report.init_io_ops,
        "output_io": report.output_io_ops,
        "tracks": report.disk_space_tracks,
    }


class TestSequentialGolden:
    @pytest.mark.parametrize("make", [make_sort, make_listrank])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_fast_equals_reference(self, make, seed):
        ref = golden(build(make, "sequential", seed=seed))
        fast = golden(build(make, "sequential", seed=seed, **FAST))
        assert fast == ref

    def test_fast_equals_reference_with_checkpointing(self):
        ref = golden(build(make_sort, "sequential", checkpoint=True))
        fast = golden(build(make_sort, "sequential", checkpoint=True, **FAST))
        assert fast == ref

    def test_fast_io_alone_with_checkpointing(self):
        """fast_io without context_cache, under checkpointing: the data-plane
        short-circuit must not disturb what checkpoints read back."""
        ref = golden(build(make_sort, "sequential", checkpoint=True))
        fast = golden(build(make_sort, "sequential", checkpoint=True, fast_io=True))
        assert fast == ref

    def test_trace_byte_identical(self):
        """With a trace attached the fast path must take the physical route,
        producing the exact reference operation stream."""
        sims, traces = [], []
        for kwargs in ({}, FAST):
            sim = build(make_sort, "sequential", **kwargs)
            traces.append(IOTrace.attach(sim.array))
            sims.append(sim)
        ref_g = golden(sims[0])
        fast_g = golden(sims[1])
        assert fast_g == ref_g
        ref_ops, fast_ops = [
            [(op.kind, op.disks, op.tracks, op.retry) for op in t.ops] for t in traces
        ]
        assert fast_ops == ref_ops
        assert traces[0].counts() == traces[1].counts()


class TestParallelGolden:
    @pytest.mark.parametrize("make", [make_sort, make_listrank])
    def test_fast_inline_equals_reference(self, make):
        ref = golden(build(make, "parallel"))
        fast = golden(build(make, "parallel", **FAST))
        assert fast == ref

    def test_fast_process_equals_reference(self):
        ref = golden(build(make_sort, "parallel"))
        fast = golden(build(make_sort, "parallel", backend="process", **FAST))
        assert fast == ref

    def test_context_cache_alone_over_process_backend(self):
        """context_cache without fast_io, with workers in real subprocesses:
        each worker's cache is private, so the counted run must still match
        the inline reference byte for byte."""
        ref = golden(build(make_sort, "parallel"))
        cached = golden(
            build(make_sort, "parallel", backend="process", context_cache=True)
        )
        assert cached == ref

    def test_trace_byte_identical_per_processor(self):
        sims, traces = [], []
        for kwargs in ({}, FAST):
            sim = build(make_sort, "parallel", **kwargs)
            traces.append([IOTrace.attach(pr.array) for pr in sim.procs])
            sims.append(sim)
        assert golden(sims[1]) == golden(sims[0])
        for t_ref, t_fast in zip(*traces):
            assert [
                (op.kind, op.disks, op.tracks, op.retry) for op in t_fast.ops
            ] == [(op.kind, op.disks, op.tracks, op.retry) for op in t_ref.ops]


class TestFaultInteraction:
    def test_cache_refused_under_fault_injection(self):
        """The disk image is authoritative when faults can corrupt it."""
        plan = FaultPlan(seed=0, corruption_rate=0.05)
        sim = build(make_sort, "sequential", faults=plan, retry=RetryPolicy(), **FAST)
        assert sim.contexts.cache is False
        assert sim.array.fast_data_plane is False

    def test_faulty_run_equal_with_fast_knobs(self):
        """With injection active the knobs are inert: identical runs."""
        def run(**kwargs):
            plan = FaultPlan(seed=1, read_error_rate=0.05, write_error_rate=0.05)
            return golden(
                build(
                    make_sort,
                    "sequential",
                    faults=plan,
                    retry=RetryPolicy(),
                    checkpoint=True,
                    **kwargs,
                )
            )

        assert run(**FAST) == run()

    def test_kill_and_resume_under_fast_path(self):
        """A run killed by a dead disk resumes on a fast-path engine: the
        restore must invalidate and then re-warm the context cache."""
        expected = golden(build(make_sort, "sequential"))["outputs"]
        plan = FaultPlan(seed=0, dead_disk=0, dead_after=40)
        dying = build(
            make_sort,
            "sequential",
            faults=plan,
            retry=RetryPolicy(max_retries=2),
            checkpoint=True,
            max_recoveries=0,
        )
        with pytest.raises(SimulationAborted) as exc_info:
            dying.run()
        ckpt = exc_info.value.checkpoint
        assert ckpt is not None

        fresh = build(make_sort, "sequential", checkpoint=True, **FAST)
        outputs, report = fresh.resume_from_checkpoint(ckpt)
        assert outputs == expected
        assert report.faults.resumed_from_step == ckpt.step
        # The restore re-cached every slot; the fast plane is live again.
        assert fresh.contexts.cache is True
        assert all(b is not None for b in fresh.contexts._cached)
